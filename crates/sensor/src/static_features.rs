//! Static features: classifying querier reverse names (paper §III-C).
//!
//! Each querier contributes exactly one static category, determined
//! from its own reverse name: keyword rules applied per dot-component
//! from the left, taking the first matching rule — so
//! `mail.ns.example.com` and `mail-ns.example.com` are both `mail`,
//! and `mail.google.sim` is `mail` rather than `google`.

use bs_dns::DomainName;
use bs_netsim::types::NameOutcome;
use bs_simd::bytes::{fold_ascii_lower, pack_prefix, prefix_mask};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The fourteen static querier categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StaticFeature {
    /// Auto-named residential hosts (`home1-2-3-4.example.com`).
    Home,
    /// Mail infrastructure.
    Mail,
    /// Name servers.
    Ns,
    /// Firewalls.
    Fw,
    /// Anti-spam appliances.
    AntiSpam,
    /// Web servers.
    Www,
    /// NTP servers.
    Ntp,
    /// CDN infrastructure (by operator suffix).
    Cdn,
    /// Amazon AWS (by suffix).
    Aws,
    /// Microsoft Azure (by suffix).
    Ms,
    /// Google address space (by suffix here; the paper uses SPF).
    Google,
    /// A name matching no category.
    OtherUnclassified,
    /// The querier's reverse authority is unreachable.
    Unreach,
    /// The querier has no reverse name.
    NxDomain,
}

impl StaticFeature {
    /// All categories, in feature-vector order.
    pub const ALL: [StaticFeature; 14] = [
        StaticFeature::Home,
        StaticFeature::Mail,
        StaticFeature::Ns,
        StaticFeature::Fw,
        StaticFeature::AntiSpam,
        StaticFeature::Www,
        StaticFeature::Ntp,
        StaticFeature::Cdn,
        StaticFeature::Aws,
        StaticFeature::Ms,
        StaticFeature::Google,
        StaticFeature::OtherUnclassified,
        StaticFeature::Unreach,
        StaticFeature::NxDomain,
    ];

    /// Index in the feature vector.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).expect("feature in ALL")
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StaticFeature::Home => "home",
            StaticFeature::Mail => "mail",
            StaticFeature::Ns => "ns",
            StaticFeature::Fw => "fw",
            StaticFeature::AntiSpam => "antispam",
            StaticFeature::Www => "www",
            StaticFeature::Ntp => "ntp",
            StaticFeature::Cdn => "cdn",
            StaticFeature::Aws => "aws",
            StaticFeature::Ms => "ms",
            StaticFeature::Google => "google",
            StaticFeature::OtherUnclassified => "other-unclassified",
            StaticFeature::Unreach => "unreach",
            StaticFeature::NxDomain => "nxdomain",
        }
    }
}

/// Keyword rules in priority order (paper §III-C: "taking first rule
/// when there are multiple matches").
const RULES: &[(StaticFeature, &[&str])] = &[
    (
        StaticFeature::Home,
        &[
            "ap", "cable", "cpe", "customer", "dsl", "dynamic", "fiber", "flets", "home", "host",
            "ip", "net", "pool", "pop", "retail", "user",
        ],
    ),
    (
        StaticFeature::Mail,
        &[
            "mail",
            "mx",
            "smtp",
            "post",
            "correo",
            "poczta",
            "send",
            "lists",
            "newsletter",
            "zimbra",
            "mta",
            "imap",
        ],
    ),
    (StaticFeature::Ns, &["cns", "dns", "ns", "cache", "resolv", "name"]),
    (StaticFeature::Fw, &["firewall", "wall", "fw"]),
    (StaticFeature::AntiSpam, &["ironport", "spam"]),
    (StaticFeature::Www, &["www"]),
    (StaticFeature::Ntp, &["ntp"]),
];

/// Operator suffix components for infrastructure categories.
const CDN_SUFFIXES: &[&str] = &["akamai", "edgecast", "cdnetworks", "llnw", "chinacache"];

/// Does `component` match `keyword`? Exact, keyword+digits, or
/// keyword followed by `-`/digits (so `mail2`, `mail-ns`, `dsl1-2-3-4`
/// all match, but `mailing` does not — a trailing letter means a
/// different word).
///
/// Operates on raw label bytes with ASCII-case-insensitive comparison:
/// this runs once per querier label on the hot extraction path, and
/// lowercasing into a fresh `String` per label dominated the matcher's
/// profile. DNS labels are ASCII by construction ([`bs_dns::Label`]
/// validates the character set), so byte-wise ASCII folding is exact.
fn component_matches(component: &[u8], keyword: &[u8]) -> bool {
    if component.len() < keyword.len() {
        return false;
    }
    let (head, rest) = component.split_at(keyword.len());
    head.eq_ignore_ascii_case(keyword)
        && (rest.is_empty() || rest[0] == b'-' || rest[0].is_ascii_digit())
}

/// Which dot-component wins when several match (ablation knob; the
/// paper, and the default everywhere, favours the left-most).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOrder {
    /// The paper's rule: scan components left to right.
    LeftmostFirst,
    /// Ablation variant: scan right to left (suffix-biased).
    RightmostFirst,
}

/// The reference component classifier: keyword-at-a-time, byte-at-a-time
/// case-insensitive comparison. Retained as the executable specification
/// of the first-match rule the packed fast path below must reproduce
/// (`tests/simd_equivalence.rs`).
fn classify_component_reference(component: &[u8]) -> Option<StaticFeature> {
    for (feature, keywords) in RULES {
        for kw in *keywords {
            if component_matches(component, kw.as_bytes()) {
                return Some(*feature);
            }
        }
    }
    // Operator suffixes are whole components (akamai, amazonaws, …).
    if CDN_SUFFIXES.iter().any(|s| component.eq_ignore_ascii_case(s.as_bytes())) {
        return Some(StaticFeature::Cdn);
    }
    if component.eq_ignore_ascii_case(b"amazonaws") {
        Some(StaticFeature::Aws)
    } else if component.eq_ignore_ascii_case(b"azure") || component.eq_ignore_ascii_case(b"msazure")
    {
        Some(StaticFeature::Ms)
    } else if component.eq_ignore_ascii_case(b"google") {
        Some(StaticFeature::Google)
    } else {
        None
    }
}

/// One keyword of the flattened rule table, with its first eight bytes
/// packed for a single masked `u64` comparison.
struct PackedKeyword {
    /// First `min(8, len)` keyword bytes, little-endian, zero-padded.
    prefix: u64,
    /// `prefix_mask(len)` — selects the bytes `prefix` covers.
    mask: u64,
    /// Keyword bytes beyond the eighth (usually empty).
    tail: &'static [u8],
    /// Full keyword length.
    len: usize,
    /// Whole-component match (operator suffixes) vs. keyword-prefix
    /// match with a `-`/digit boundary (the RULES table).
    exact: bool,
    feature: StaticFeature,
}

/// The flattened keyword table in **exactly** the reference's scan
/// order: every RULES keyword (rule priority, then list order), then
/// the whole-component operator suffixes. First match wins, so order
/// is semantics.
fn packed_rules() -> &'static [PackedKeyword] {
    static TABLE: OnceLock<Vec<PackedKeyword>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Vec::new();
        let mut push = |kw: &'static str, exact: bool, feature: StaticFeature| {
            let b = kw.as_bytes();
            t.push(PackedKeyword {
                prefix: pack_prefix(b),
                mask: prefix_mask(b.len()),
                tail: if b.len() > 8 { &b[8..] } else { &[] },
                len: b.len(),
                exact,
                feature,
            });
        };
        for (feature, keywords) in RULES {
            for kw in *keywords {
                push(kw, false, *feature);
            }
        }
        for s in CDN_SUFFIXES {
            push(s, true, StaticFeature::Cdn);
        }
        push("amazonaws", true, StaticFeature::Aws);
        push("azure", true, StaticFeature::Ms);
        push("msazure", true, StaticFeature::Ms);
        push("google", true, StaticFeature::Google);
        t
    })
}

/// The packed fast component classifier: fold the component to
/// lowercase **once** in branchless 8-byte blocks, pack its first
/// eight bytes, then test each keyword with one masked `u64` equality
/// (plus a short tail compare for the few keywords longer than eight
/// bytes) instead of a byte-at-a-time case-insensitive loop per
/// keyword. Identical first-match semantics to
/// [`classify_component_reference`]: same table order, same boundary
/// rule (`-`/digit continues a keyword, a letter does not).
fn classify_component(component: &[u8]) -> Option<StaticFeature> {
    let n = component.len();
    let mut buf = [0u8; 64];
    if n > buf.len() {
        // DNS labels are ≤ 63 bytes; anything longer (not constructible
        // through bs_dns) falls back to the reference.
        return classify_component_reference(component);
    }
    let folded = &mut buf[..n];
    fold_ascii_lower(component, folded);
    let packed = pack_prefix(folded);
    for e in packed_rules() {
        let fits = if e.exact { n == e.len } else { n >= e.len };
        if !fits || packed & e.mask != e.prefix {
            continue;
        }
        if e.len > 8 && folded[8..e.len] != *e.tail {
            continue;
        }
        if !e.exact && n > e.len {
            let next = folded[e.len];
            if next != b'-' && !next.is_ascii_digit() {
                continue;
            }
        }
        return Some(e.feature);
    }
    None
}

fn classify_with(
    name: &DomainName,
    order: MatchOrder,
    classify: impl Fn(&[u8]) -> Option<StaticFeature>,
) -> StaticFeature {
    fn classify_seq<'a>(
        iter: impl Iterator<Item = &'a [u8]>,
        classify: impl Fn(&[u8]) -> Option<StaticFeature>,
    ) -> StaticFeature {
        for component in iter {
            if let Some(f) = classify(component) {
                return f;
            }
        }
        StaticFeature::OtherUnclassified
    }
    let labels = name.labels().iter().map(|l| l.as_str().as_bytes());
    match order {
        MatchOrder::LeftmostFirst => classify_seq(labels, classify),
        MatchOrder::RightmostFirst => classify_seq(labels.rev(), classify),
    }
}

/// Classify a reverse name into a static category with an explicit
/// component-scan order (packed fast matcher).
pub fn classify_name_with_order(name: &DomainName, order: MatchOrder) -> StaticFeature {
    classify_with(name, order, classify_component)
}

/// [`classify_name_with_order`] through the retained byte-at-a-time
/// reference matcher — the executable specification the packed fast
/// path is property-tested against.
pub fn classify_name_with_order_reference(name: &DomainName, order: MatchOrder) -> StaticFeature {
    classify_with(name, order, classify_component_reference)
}

/// Classify a reverse name into a static category (the paper's
/// left-most-first rule).
pub fn classify_name(name: &DomainName) -> StaticFeature {
    classify_name_with_order(name, MatchOrder::LeftmostFirst)
}

/// Classify the full reverse-lookup outcome for a querier.
pub fn classify_querier_name(outcome: &NameOutcome) -> StaticFeature {
    match outcome {
        NameOutcome::Name(n) => classify_name(n),
        NameOutcome::NxDomain => StaticFeature::NxDomain,
        NameOutcome::Unreachable => StaticFeature::Unreach,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(s: &str) -> StaticFeature {
        classify_name(&DomainName::parse(s).unwrap())
    }

    #[test]
    fn paper_examples() {
        // §III-C: "both mail.ns.example.com and mail-ns.example.com are mail"
        assert_eq!(classify("mail.ns.example.com"), StaticFeature::Mail);
        assert_eq!(classify("mail-ns.example.com"), StaticFeature::Mail);
        // home computers with embedded addresses
        assert_eq!(classify("home1-2-3-4.example.com"), StaticFeature::Home);
        assert_eq!(classify("dsl1-2-3-4.bigisp.net"), StaticFeature::Home);
    }

    #[test]
    fn leftmost_component_wins() {
        // mail.google.sim: left-most "mail" beats the google suffix.
        assert_eq!(classify("mail.google.sim"), StaticFeature::Mail);
        // but a neutral host under google is google.
        assert_eq!(classify("a1-2-3-4.compute.google.sim"), StaticFeature::Google);
    }

    #[test]
    fn first_rule_wins_on_multi_match() {
        // "pop" appears in both home and mail lists; home comes first.
        assert_eq!(classify("pop3.example.com"), StaticFeature::Home);
    }

    #[test]
    fn keyword_requires_word_boundary() {
        // 'mailing' should NOT match 'mail'; 'wall' rule does not match 'wallet'.
        assert_eq!(classify("mailing.example.com"), StaticFeature::OtherUnclassified);
        assert_eq!(classify("wallet.example.com"), StaticFeature::OtherUnclassified);
        // but digits and dashes do continue a keyword
        assert_eq!(classify("mx01.example.jp"), StaticFeature::Mail);
        assert_eq!(classify("ns1-cache.isp.net"), StaticFeature::Ns);
        assert_eq!(classify("fw2.corp.example.com"), StaticFeature::Fw);
    }

    #[test]
    fn infrastructure_suffixes() {
        assert_eq!(classify("a96-7-4-2.deploy.akamai.sim"), StaticFeature::Cdn);
        assert_eq!(classify("edge3.edgecast.sim"), StaticFeature::Cdn);
        assert_eq!(classify("ec2-1-2-3-4.compute.amazonaws.sim"), StaticFeature::Aws);
        assert_eq!(classify("waws-prod.azure.sim"), StaticFeature::Ms);
    }

    #[test]
    fn all_rule_categories_reachable() {
        assert_eq!(classify("ironport2.example.com"), StaticFeature::AntiSpam);
        assert_eq!(classify("www.example.jp"), StaticFeature::Www);
        assert_eq!(classify("ntp1.university.edu"), StaticFeature::Ntp);
        assert_eq!(classify("zxqv77.example.org"), StaticFeature::OtherUnclassified);
    }

    #[test]
    fn outcome_variants() {
        assert_eq!(classify_querier_name(&NameOutcome::NxDomain), StaticFeature::NxDomain);
        assert_eq!(classify_querier_name(&NameOutcome::Unreachable), StaticFeature::Unreach);
        let n = DomainName::parse("smtp.example.com").unwrap();
        assert_eq!(classify_querier_name(&NameOutcome::Name(n)), StaticFeature::Mail);
    }

    #[test]
    fn packed_matcher_matches_reference_on_adversarial_names() {
        let cases = [
            "mail.ns.example.com",
            "MAIL-NS.Example.COM",
            "mailing.example.com",
            "newsletter7.example.com", // >8-byte keyword with boundary digit
            "newslettex.example.com",  // 8-byte prefix matches, tail differs
            "NewsLetter.example.com",  // >8-byte keyword, mixed case
            "chinacache.sim",          // >8-byte exact suffix
            "chinacache1.sim",         // exact suffix must not take a digit tail
            "amazonaws.sim",
            "amazonaws1.sim",
            "pop3.example.com",
            "a96-7-4-2.deploy.akamai.sim",
            "wallet.example.com",
            "fw.example.com",     // keyword == whole component
            "m.example.com",      // shorter than every keyword
            "customer-1.isp.net", // exactly 8 bytes, dash boundary
        ];
        for c in cases {
            let n = DomainName::parse(c).unwrap();
            for order in [MatchOrder::LeftmostFirst, MatchOrder::RightmostFirst] {
                assert_eq!(
                    classify_name_with_order(&n, order),
                    classify_name_with_order_reference(&n, order),
                    "{c} under {order:?}"
                );
            }
        }
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, f) in StaticFeature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(StaticFeature::ALL.len(), 14);
    }
}
