//! The querier metadata plane: resolve each *unique* querier once per
//! window, then let extraction work over small interned ids.
//!
//! The paper's central observation is that backscatter queriers are
//! shared infrastructure — recursive resolvers, crawlers — that recur
//! across many originators and across weekly windows. The reference
//! extraction path ignores that: it re-resolves the reverse name,
//! keyword category, AS and country per **(originator, querier)**
//! pair, making feature extraction O(Σ footprints) when the real
//! resolution work is O(unique queriers).
//!
//! This module fixes the asymmetry in two layers:
//!
//! * [`QuerierMetaTable`] — a per-window resolution pass over
//!   `Observations::all_queriers` that visits each unique querier
//!   exactly once (chunked across the `bs-par` pool) and memoizes
//!   `(static category, AS, country)` into a dense table keyed by the
//!   packed-u32 address via [`bs_fastmap::FastMap`]. AS numbers and
//!   country codes are *interned* into dense id spaces `0..n` in
//!   ascending-querier order (deterministic regardless of thread
//!   count), so window totals fall out of the interner sizes and the
//!   per-originator distinct-AS/country unions become
//!   [`bs_fastmap::DenseIdSet`] bitmap counts instead of
//!   `BTreeSet<AsId>` insertions per querier per originator.
//! * [`QuerierMetaCache`] — an optional cross-window memo of
//!   *resolved* (not interned — ids are per-window) metadata with
//!   generation-based invalidation, so the live streaming path reuses
//!   resolutions for queriers that persist between windows while
//!   still re-resolving entries older than `keep_windows` generations
//!   (blacklist-style metadata churns slowly but does churn). Hit /
//!   miss / expiry / eviction counts flush to `sensor.qmeta.*`
//!   telemetry, so live scrapes and the watchdog see cache health.
//!
//! Dense ids are `u32`, not `u16`: the id space is bounded by the
//! number of distinct values actually observed, which at a busy
//! authority can exceed 65 535 ASes per window. [`NO_ID`] marks a
//! querier with no AS (or country) mapping.

use crate::ingest::Observations;
use crate::static_features::classify_querier_name;
use crate::QuerierInfo;
use bs_fastmap::FastMap;
use bs_netsim::types::{AsId, CountryCode};
use std::net::Ipv4Addr;

/// Sentinel dense id for "no AS / no country known for this querier".
pub const NO_ID: u32 = u32::MAX;

/// Queriers per parallel resolution task. Resolution consults external
/// metadata (reverse name synthesis, whois/geo lookups), so tasks are
/// coarse enough to amortize pool dispatch but fine enough to spread a
/// storm's querier population across cores.
const RESOLVE_CHUNK: usize = 1024;

/// One querier's metadata after per-window interning: the static
/// keyword category (dense index into [`crate::StaticFeature::ALL`])
/// and dense AS/country ids ([`NO_ID`] when unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerierMeta {
    /// `StaticFeature::index()` of the classified reverse name.
    pub category: u8,
    /// Dense per-window AS id, or [`NO_ID`].
    pub as_id: u32,
    /// Dense per-window country id, or [`NO_ID`].
    pub country_id: u32,
}

/// One querier's *resolved* metadata before interning — what the
/// cross-window [`QuerierMetaCache`] stores (dense ids cannot be
/// cached: the id spaces restart every window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawQuerierMeta {
    /// `StaticFeature::index()` of the classified reverse name.
    pub category: u8,
    /// The querier's AS, if known.
    pub asn: Option<AsId>,
    /// The querier's country, if known.
    pub country: Option<CountryCode>,
}

/// Resolve one querier against the metadata provider: reverse name →
/// keyword category, plus AS and country. This is the expensive call
/// the metadata plane guarantees to make at most once per unique
/// querier per window (and, with a warm cache, once per
/// `keep_windows` generations).
pub fn resolve_querier(info: &impl QuerierInfo, addr: Ipv4Addr) -> RawQuerierMeta {
    RawQuerierMeta {
        category: classify_querier_name(&info.querier_name(addr)).index() as u8,
        asn: info.querier_as(addr),
        country: info.querier_country(addr),
    }
}

/// Resolve a slice of queriers in [`RESOLVE_CHUNK`]-sized tasks on the
/// `bs-par` pool. Output order matches input order (`par_chunks` is
/// order-preserving), so downstream interning is deterministic.
fn resolve_chunked(addrs: &[Ipv4Addr], info: &(impl QuerierInfo + Sync)) -> Vec<RawQuerierMeta> {
    bs_par::par_chunks(addrs, RESOLVE_CHUNK, |_, chunk| {
        // One profiler ledger slot per chunk, not per originator (let
        // alone per querier): the static keyword matcher now runs
        // exactly here, once per unique querier.
        let _cost = bs_prof::stage("sensor.static.lanes", bs_trace::ledger::current_window());
        chunk.iter().map(|a| resolve_querier(info, *a)).collect::<Vec<_>>()
    })
    .concat()
}

/// The per-window metadata table: every unique querier of the window,
/// resolved once and interned into dense id spaces.
#[derive(Debug, Clone)]
pub struct QuerierMetaTable {
    /// Packed querier address → index into `meta`.
    index: FastMap<u32, u32>,
    /// Interned metadata, in ascending querier-address order.
    meta: Vec<QuerierMeta>,
    /// Size of the interned AS id space (== the window's total
    /// distinct ASes, as `Observations::total_ases` computes it).
    n_ases: usize,
    /// Size of the interned country id space.
    n_countries: usize,
}

impl QuerierMetaTable {
    /// Build the table for one window. With `cache`, previously
    /// resolved queriers skip the metadata provider entirely; only
    /// misses (and entries stale past the cache's `keep_windows`) hit
    /// `info`, in parallel chunks.
    ///
    /// Interning runs sequentially over the ascending
    /// `all_queriers` order, so dense ids — and everything computed
    /// from them — are independent of thread count and cache state.
    pub fn build(
        obs: &Observations,
        info: &(impl QuerierInfo + Sync),
        cache: Option<&mut QuerierMetaCache>,
    ) -> Self {
        let addrs: Vec<Ipv4Addr> = obs.all_queriers.iter().copied().collect();
        let (raw, resolved, reused) = match cache {
            None => {
                let n = addrs.len() as u64;
                (resolve_chunked(&addrs, info), n, 0)
            }
            Some(cache) => {
                cache.begin_window();
                let mut raw: Vec<Option<RawQuerierMeta>> =
                    addrs.iter().map(|a| cache.get(u32::from(*a))).collect();
                let missing: Vec<Ipv4Addr> =
                    addrs.iter().zip(&raw).filter(|(_, r)| r.is_none()).map(|(a, _)| *a).collect();
                let resolved = resolve_chunked(&missing, info);
                let n_resolved = resolved.len() as u64;
                let mut fresh = resolved.into_iter();
                for (a, slot) in addrs.iter().zip(raw.iter_mut()) {
                    if slot.is_none() {
                        let m = fresh.next().expect("one resolution per miss");
                        cache.insert(u32::from(*a), m);
                        *slot = Some(m);
                    }
                }
                cache.publish_telemetry();
                let raw = raw.into_iter().map(|r| r.expect("every slot filled")).collect();
                (raw, n_resolved, addrs.len() as u64 - n_resolved)
            }
        };
        if bs_trace::is_active() {
            // Conservation over the resolution pass: every unique
            // querier either reused a cached resolution or cost one
            // metadata lookup.
            bs_trace::ledger::record(
                "sensor.extract.lookup",
                addrs.len() as u64,
                &[("resolved", resolved), ("cache_reused", reused)],
            );
        }

        let mut as_ids: FastMap<u32, u32> = FastMap::new();
        let mut country_ids: FastMap<u32, u32> = FastMap::new();
        let mut index: FastMap<u32, u32> = FastMap::with_capacity(addrs.len());
        let mut meta = Vec::with_capacity(addrs.len());
        for (i, (a, r)) in addrs.iter().zip(&raw).enumerate() {
            let as_id = match r.asn {
                Some(AsId(n)) => {
                    let next = as_ids.len() as u32;
                    *as_ids.get_or_insert_with(n, || next).0
                }
                None => NO_ID,
            };
            let country_id = match r.country {
                Some(CountryCode(b)) => {
                    let next = country_ids.len() as u32;
                    *country_ids.get_or_insert_with(u16::from_be_bytes(b) as u32, || next).0
                }
                None => NO_ID,
            };
            index.insert(u32::from(*a), i as u32);
            meta.push(QuerierMeta { category: r.category, as_id, country_id });
        }
        QuerierMetaTable { index, meta, n_ases: as_ids.len(), n_countries: country_ids.len() }
    }

    /// The interned metadata for `addr`, if it was a querier of this
    /// window.
    #[inline]
    pub fn get(&self, addr: Ipv4Addr) -> Option<QuerierMeta> {
        self.index.get(&u32::from(addr)).map(|&i| self.meta[i as usize])
    }

    /// Unique queriers in the table.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Distinct ASes across the window — equals
    /// [`Observations::total_ases`] by construction (the interner
    /// admits exactly the distinct `Some(AsId)` values).
    pub fn distinct_ases(&self) -> usize {
        self.n_ases
    }

    /// Distinct countries across the window — equals
    /// [`Observations::total_countries`].
    pub fn distinct_countries(&self) -> usize {
        self.n_countries
    }
}

/// Cross-window memo of resolved querier metadata with
/// generation-based invalidation.
///
/// Each [`QuerierMetaTable::build`] with a cache opens a new
/// *generation*. A cached entry is served while it is at most
/// `keep_windows` generations old; older entries count as expired and
/// re-resolve (metadata churns — slowly — so resolutions must not
/// live forever). When the cache exceeds `max_entries` at a window
/// boundary, stale entries are swept out; the cap is soft — entries
/// touched within the keep horizon are never dropped, so one window's
/// unique queriers always fit.
#[derive(Debug)]
pub struct QuerierMetaCache {
    entries: FastMap<u32, CacheEntry>,
    generation: u32,
    keep_windows: u32,
    max_entries: usize,
    hits: u64,
    misses: u64,
    expired: u64,
    evicted: u64,
    /// Counter values already pushed to telemetry (hits, misses,
    /// expired, evicted), so each publish adds only the delta.
    published: [u64; 4],
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    meta: RawQuerierMeta,
    last_used: u32,
}

impl Default for QuerierMetaCache {
    /// Defaults sized for the live stream: up to ~1M resolutions kept
    /// for 8 windows.
    fn default() -> Self {
        QuerierMetaCache::new(1 << 20, 8)
    }
}

impl QuerierMetaCache {
    /// A cache holding up to `max_entries` resolutions (soft cap,
    /// enforced at window boundaries), each valid for `keep_windows`
    /// generations since last use.
    pub fn new(max_entries: usize, keep_windows: u32) -> Self {
        QuerierMetaCache {
            entries: FastMap::new(),
            generation: 0,
            keep_windows,
            max_entries,
            hits: 0,
            misses: 0,
            expired: 0,
            evicted: 0,
            published: [0; 4],
        }
    }

    /// Open a new generation; sweeps stale entries when over the cap.
    pub fn begin_window(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.entries.len() > self.max_entries {
            let gen = self.generation;
            let keep = self.keep_windows;
            let live: Vec<(u32, CacheEntry)> = self
                .entries
                .iter()
                .filter(|(_, e)| gen.wrapping_sub(e.last_used) <= keep)
                .map(|(k, e)| (k, *e))
                .collect();
            self.evicted += (self.entries.len() - live.len()) as u64;
            let mut swept = FastMap::with_capacity(live.len());
            for (k, e) in live {
                swept.insert(k, e);
            }
            self.entries = swept;
        }
    }

    /// Look up a cached resolution for the packed querier address.
    /// Fresh entries are hits (and have their age reset); stale
    /// entries count as expired misses and must be re-resolved via
    /// [`QuerierMetaCache::insert`].
    pub fn get(&mut self, addr: u32) -> Option<RawQuerierMeta> {
        let gen = self.generation;
        let keep = self.keep_windows;
        match self.entries.get_mut(&addr) {
            Some(e) if gen.wrapping_sub(e.last_used) <= keep => {
                e.last_used = gen;
                self.hits += 1;
                Some(e.meta)
            }
            Some(_) => {
                self.expired += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a fresh resolution for the packed querier address.
    pub fn insert(&mut self, addr: u32, meta: RawQuerierMeta) {
        self.entries.insert(addr, CacheEntry { meta, last_used: self.generation });
    }

    /// Cached resolutions currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses (including expirations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime entries that aged past `keep_windows` and re-resolved.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Lifetime entries dropped by the over-cap sweep.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Flush counter deltas since the last publish into the telemetry
    /// registry (plus the current size as a gauge), so live scrapes
    /// and the watchdog see cache health per window.
    pub fn publish_telemetry(&mut self) {
        let now = [self.hits, self.misses, self.expired, self.evicted];
        let names = [
            "sensor.qmeta.cache_hits",
            "sensor.qmeta.cache_misses",
            "sensor.qmeta.cache_expired",
            "sensor.qmeta.cache_evictions",
        ];
        for ((name, total), published) in names.iter().zip(now).zip(self.published) {
            bs_telemetry::counter_add(name, total - published);
        }
        self.published = now;
        bs_telemetry::gauge_set("sensor.qmeta.cache_entries", self.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::Observations;
    use bs_dns::{Rcode, SimTime};
    use bs_netsim::log::{QueryLog, QueryLogRecord};
    use bs_netsim::types::NameOutcome;

    /// Toy metadata: category from last-octet parity, AS from the
    /// second octet (octet 9 → unknown), country from first-octet
    /// parity (octet 13 → unknown).
    struct ToyInfo;
    impl QuerierInfo for ToyInfo {
        fn querier_name(&self, addr: Ipv4Addr) -> NameOutcome {
            if addr.octets()[3].is_multiple_of(2) {
                NameOutcome::Name(bs_dns::DomainName::parse("mail.example.com").unwrap())
            } else {
                NameOutcome::NxDomain
            }
        }
        fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId> {
            let o = addr.octets()[1];
            (o != 9).then_some(AsId(o as u32))
        }
        fn querier_country(&self, addr: Ipv4Addr) -> Option<CountryCode> {
            match addr.octets()[0] {
                13 => None,
                n if n.is_multiple_of(2) => Some(CountryCode::new("us").unwrap()),
                _ => Some(CountryCode::new("jp").unwrap()),
            }
        }
    }

    fn observations(queriers: &[[u8; 4]]) -> Observations {
        let mut log = QueryLog::new();
        for (i, q) in queriers.iter().enumerate() {
            log.push(QueryLogRecord {
                time: SimTime(i as u64 * 60),
                querier: Ipv4Addr::new(q[0], q[1], q[2], q[3]),
                originator: "203.0.113.9".parse().unwrap(),
                rcode: Rcode::NoError,
            });
        }
        Observations::ingest(&log, SimTime(0), SimTime(1_000_000))
    }

    #[test]
    fn table_interns_matching_window_totals() {
        let obs = observations(&[
            [10, 1, 0, 1],
            [10, 1, 0, 2],
            [10, 2, 0, 3],
            [11, 2, 0, 4],
            [13, 9, 0, 5], // no AS, no country
        ]);
        let table = QuerierMetaTable::build(&obs, &ToyInfo, None);
        assert_eq!(table.len(), 5);
        assert_eq!(table.distinct_ases(), obs.total_ases(&ToyInfo));
        assert_eq!(table.distinct_countries(), obs.total_countries(&ToyInfo));
        let unknown = table.get(Ipv4Addr::new(13, 9, 0, 5)).unwrap();
        assert_eq!(unknown.as_id, NO_ID);
        assert_eq!(unknown.country_id, NO_ID);
        assert!(table.get(Ipv4Addr::new(99, 99, 99, 99)).is_none());
    }

    #[test]
    fn table_categories_match_direct_classification() {
        let obs = observations(&[[10, 1, 0, 1], [10, 1, 0, 2]]);
        let table = QuerierMetaTable::build(&obs, &ToyInfo, None);
        for q in &obs.all_queriers {
            let direct = classify_querier_name(&ToyInfo.querier_name(*q)).index() as u8;
            assert_eq!(table.get(*q).unwrap().category, direct);
        }
    }

    #[test]
    fn dense_ids_are_deterministic_in_querier_order() {
        let obs = observations(&[[10, 1, 0, 1], [10, 2, 0, 2], [11, 3, 0, 3]]);
        let a = QuerierMetaTable::build(&obs, &ToyInfo, None);
        let b = QuerierMetaTable::build(&obs, &ToyInfo, None);
        for q in &obs.all_queriers {
            assert_eq!(a.get(*q), b.get(*q));
        }
        // First querier in ascending order interns id 0.
        let first = *obs.all_queriers.iter().next().unwrap();
        assert_eq!(a.get(first).unwrap().as_id, 0);
    }

    #[test]
    fn cache_serves_hits_within_keep_horizon() {
        let obs = observations(&[[10, 1, 0, 1], [10, 2, 0, 2]]);
        let mut cache = QuerierMetaCache::new(1024, 2);
        let cold = QuerierMetaTable::build(&obs, &ToyInfo, Some(&mut cache));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        let warm = QuerierMetaTable::build(&obs, &ToyInfo, Some(&mut cache));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        for q in &obs.all_queriers {
            assert_eq!(cold.get(*q), warm.get(*q), "cache must not change interning");
        }
    }

    #[test]
    fn cache_expires_entries_past_keep_windows() {
        let obs = observations(&[[10, 1, 0, 1]]);
        let mut cache = QuerierMetaCache::new(1024, 0);
        QuerierMetaTable::build(&obs, &ToyInfo, Some(&mut cache));
        // keep_windows = 0: the next generation already re-resolves.
        QuerierMetaTable::build(&obs, &ToyInfo, Some(&mut cache));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.expired(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cache_sweep_evicts_only_stale_entries() {
        let mut cache = QuerierMetaCache::new(2, 1);
        let meta = RawQuerierMeta { category: 0, asn: None, country: None };
        cache.begin_window();
        cache.insert(1, meta);
        cache.insert(2, meta);
        cache.insert(3, meta);
        // Age entries 1 and 2 past the keep horizon; 3 stays fresh.
        cache.begin_window();
        assert!(cache.get(3).is_some());
        cache.begin_window();
        cache.begin_window(); // over cap → sweep
        assert_eq!(cache.evicted(), 2);
        assert_eq!(cache.len(), 1);
    }
}
