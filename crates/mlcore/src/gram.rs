//! Bounded Gram-matrix kernel caches.
//!
//! SMO reads kernel entries `K(i, j)` in an access pattern dominated
//! by whole rows (the decision-function sums) plus a few scalars per
//! update. Below a size limit the whole symmetric matrix is
//! precomputed flat and row-major, so a decision sum walks one
//! contiguous slice; above it, rows are computed on demand into a
//! bounded cache whose memory never exceeds the full-matrix budget.
//!
//! The kernel **must be symmetric bit-for-bit** (`k(i, j) == k(j, i)`
//! as f64 bits): callers rely on a cached row `i` supplying `K(j, i)`
//! for any `j`. RBF kernels satisfy this — `(x - y)²` and `(y - x)²`
//! are the same float — as does any kernel built from symmetric
//! elementwise terms summed in a fixed order.

/// A kernel cache over `n` training rows.
#[derive(Debug)]
pub struct GramCache<F: Fn(usize, usize) -> f64> {
    kernel: F,
    n: usize,
    /// Full `n × n` row-major matrix when `n` is small enough.
    full: Option<Vec<f64>>,
    /// Lazy per-row cache otherwise.
    rows: Vec<Option<Box<[f64]>>>,
    cached: usize,
    cap: usize,
    /// Fallback row buffer once the cache is full.
    scratch: Vec<f64>,
}

impl<F: Fn(usize, usize) -> f64> GramCache<F> {
    /// Build a cache. `full_limit` is the largest `n` for which the
    /// whole matrix is materialized (memory `n² × 8` bytes); beyond
    /// it, at most `row_cap` rows are cached (`row_cap × n × 8`
    /// bytes), and further rows are recomputed into a scratch buffer.
    pub fn new(n: usize, full_limit: usize, row_cap: usize, kernel: F) -> Self {
        let full = if n <= full_limit {
            let mut g = vec![0.0; n * n];
            for i in 0..n {
                for j in i..n {
                    let v = kernel(i, j);
                    g[i * n + j] = v;
                    g[j * n + i] = v;
                }
            }
            Some(g)
        } else {
            None
        };
        let rows = if full.is_some() { Vec::new() } else { vec![None; n] };
        GramCache { kernel, n, full, rows, cached: 0, cap: row_cap, scratch: Vec::new() }
    }

    /// True when the whole matrix is resident.
    pub fn is_full(&self) -> bool {
        self.full.is_some()
    }

    /// Rows currently cached (lazy mode; 0 when full).
    pub fn cached_rows(&self) -> usize {
        self.cached
    }

    /// Kernel row `i`: `K(i, j)` for every `j`, contiguous.
    pub fn row(&mut self, i: usize) -> &[f64] {
        let Self { kernel, n, full, rows, cached, cap, scratch } = self;
        let n = *n;
        if let Some(g) = full {
            return &g[i * n..(i + 1) * n];
        }
        if rows[i].is_none() && *cached < *cap {
            rows[i] = Some((0..n).map(|j| kernel(i, j)).collect());
            *cached += 1;
        }
        match &rows[i] {
            Some(r) => r,
            None => {
                scratch.clear();
                scratch.extend((0..n).map(|j| kernel(i, j)));
                scratch
            }
        }
    }

    /// One kernel entry `K(i, j)`.
    pub fn entry(&mut self, i: usize, j: usize) -> f64 {
        self.row(i)[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A symmetric toy kernel with distinguishable entries.
    fn k(i: usize, j: usize) -> f64 {
        1.0 / (1.0 + (i as f64 - j as f64).abs()) + (i + j) as f64
    }

    #[test]
    fn full_and_lazy_agree_bitwise() {
        let n = 17;
        let mut full = GramCache::new(n, 64, 0, k);
        let mut lazy_cached = GramCache::new(n, 4, 8, k);
        let mut lazy_scratch = GramCache::new(n, 4, 2, k);
        assert!(full.is_full());
        assert!(!lazy_cached.is_full());
        for i in 0..n {
            for j in 0..n {
                let a = full.entry(i, j);
                assert_eq!(a.to_bits(), lazy_cached.entry(i, j).to_bits());
                assert_eq!(a.to_bits(), lazy_scratch.entry(i, j).to_bits());
                assert_eq!(a.to_bits(), k(i, j).to_bits());
            }
        }
    }

    #[test]
    fn row_cap_bounds_resident_rows() {
        let n = 10;
        let mut g = GramCache::new(n, 0, 3, k);
        for i in 0..n {
            let row = g.row(i).to_vec();
            assert_eq!(row.len(), n);
        }
        assert_eq!(g.cached_rows(), 3, "only the first `cap` distinct rows stick");
        // Cached and scratch-computed rows read back identically.
        for i in 0..n {
            assert_eq!(g.row(i)[5].to_bits(), k(i, 5).to_bits());
        }
    }

    #[test]
    fn symmetric_mirror_matches_direct_compute() {
        let n = 9;
        let mut g = GramCache::new(n, 64, 0, k);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(g.entry(i, j).to_bits(), g.entry(j, i).to_bits());
            }
        }
    }
}
