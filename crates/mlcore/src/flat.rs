//! Flat pre-order tree arenas.
//!
//! A `Box`-recursive tree costs a heap allocation, a pointer chase and
//! unpredictable locality per level of every `predict`. The arena
//! stores nodes in **pre-order** in one `Vec`: a split's left child is
//! implicitly the next node, only the right child needs an offset, and
//! descending a path walks mostly-forward through one allocation.
//! Pre-order is also exactly the order of the `bs-forest v1` wire
//! format, so serialization is a linear scan and the format stays
//! byte-identical to the boxed original.

use crate::block::LaneBlocks;
use bs_simd::{F64x8, U32x8, LANES};
use serde::{Deserialize, Serialize};

/// Sentinel feature index marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// One arena node.
///
/// Splits: `feature`/`threshold` describe the test (`x[feature] <=
/// threshold` goes left), the left child sits at `index + 1`, and
/// `right` is the right child's arena index. Leaves: `feature` is
/// [`LEAF`], `right` holds the class, `threshold` is zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlatNode {
    /// Split feature, or [`LEAF`].
    pub feature: u32,
    /// Split threshold; zero for leaves.
    pub threshold: f64,
    /// Right-child index for splits; class for leaves.
    pub right: u32,
}

/// A pre-order flat tree, grown through [`FlatTree::push_leaf`] /
/// [`FlatTree::begin_split`] / [`FlatTree::finish_split`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
}

impl FlatTree {
    /// An empty tree.
    pub fn new() -> Self {
        FlatTree { nodes: Vec::new() }
    }

    /// Append a leaf for `class`; returns its index.
    pub fn push_leaf(&mut self, class: u32) -> usize {
        self.nodes.push(FlatNode { feature: LEAF, threshold: 0.0, right: class });
        self.nodes.len() - 1
    }

    /// Append a split whose left subtree will be built next (pre-order).
    /// Returns the split's index for [`FlatTree::finish_split`].
    pub fn begin_split(&mut self, feature: u32, threshold: f64) -> usize {
        assert_ne!(feature, LEAF, "feature index collides with the leaf sentinel");
        self.nodes.push(FlatNode { feature, threshold, right: 0 });
        self.nodes.len() - 1
    }

    /// Seal split `idx` after its left subtree is fully built: the next
    /// node appended becomes its right child.
    pub fn finish_split(&mut self, idx: usize) {
        self.nodes[idx].right = self.nodes.len() as u32;
    }

    /// Iterative root-to-leaf descent; returns the class.
    pub fn predict(&self, x: &[f64]) -> u32 {
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.feature == LEAF {
                return node.right;
            }
            i = if x[node.feature as usize] <= node.threshold {
                i + 1
            } else {
                node.right as usize
            };
        }
    }

    /// Batch predict: one pass over the arena-resident tree per row.
    pub fn predict_all<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<u32> {
        rows.iter().map(|r| self.predict(r.as_ref())).collect()
    }

    /// Level-synchronous lane descent: [`LANES`] rows advance one tree
    /// level per iteration with branchless node stepping.
    ///
    /// `block` is one feature-major [`LaneBlocks`] block (feature `f`
    /// of lane `l` at `f * LANES + l`). Each iteration gathers the
    /// eight cursors' node fields, compares `x[feature] <= threshold`
    /// lane-wise (IEEE `<=`, the exact scalar branch condition) and
    /// selects `cursor + 1` or `right` — no per-lane branching, so the
    /// eight dependency chains issue in parallel. Lanes that reach a
    /// leaf are **parked** on it via a masked self-loop (the sentinel
    /// self-loop: their cursor selects itself) until every lane is
    /// done; parked lanes gather feature 0 harmlessly, which exists
    /// whenever the tree contains any split.
    ///
    /// Bit-identical to eight [`FlatTree::predict`] calls: every
    /// per-lane compare and index computation is the same expression on
    /// the same bits, and no floating-point reduction is involved.
    pub fn predict_lanes(&self, block: &[f64]) -> [u32; LANES] {
        debug_assert_eq!(block.len() % LANES, 0, "block is feature-major × LANES");
        let nodes = self.nodes.as_slice();
        let leaf = U32x8::splat(LEAF);
        let one = U32x8::splat(1);
        let mut cur = U32x8::splat(0);
        loop {
            // One gather pass per level: read each lane's node exactly
            // once and scatter its fields into lane-shaped arrays.
            let mut feat_a = [0u32; LANES];
            let mut thr_a = [0.0f64; LANES];
            let mut right_a = [0u32; LANES];
            for l in 0..LANES {
                let n = &nodes[cur.get(l) as usize];
                feat_a[l] = n.feature;
                thr_a[l] = n.threshold;
                right_a[l] = n.right;
            }
            let feat = U32x8::from_array(feat_a);
            let parked = feat.eq(leaf);
            if parked.all() {
                // For LEAF nodes `right` holds the class.
                return right_a;
            }
            let gather_feat = parked.select_u32(U32x8::splat(0), feat);
            let x = F64x8::from_fn(|l| block[gather_feat.get(l) as usize * LANES + l]);
            let next = x
                .le(F64x8::from_array(thr_a))
                .select_u32(cur.wrapping_add(one), U32x8::from_array(right_a));
            cur = parked.select_u32(cur, next);
        }
    }

    /// Predict every row of `blocks` through [`FlatTree::predict_lanes`],
    /// appending classes in row order to `out` (padding-lane outputs of
    /// a ragged final block are discarded).
    pub fn predict_blocked_into(&self, blocks: &LaneBlocks, out: &mut Vec<u32>) {
        out.reserve(blocks.n_rows());
        for b in 0..blocks.n_blocks() {
            let classes = self.predict_lanes(blocks.block(b));
            let take = LANES.min(blocks.n_rows() - b * LANES);
            out.extend_from_slice(&classes[..take]);
        }
    }

    /// Predict every row of `blocks` through the lane path; classes in
    /// row order.
    pub fn predict_blocked(&self, blocks: &LaneBlocks) -> Vec<u32> {
        let mut out = Vec::new();
        self.predict_blocked_into(blocks, &mut out);
        out
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in pre-order (serialization support).
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.feature == LEAF).count()
    }

    /// Depth (a leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max = 0;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((i, d)) = stack.pop() {
            let node = &self.nodes[i];
            if node.feature == LEAF {
                max = max.max(d);
            } else {
                stack.push((i + 1, d + 1));
                stack.push((node.right as usize, d + 1));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 <= 1.0 ? (x1 <= 5.0 ? A : B) : C
    fn two_level() -> FlatTree {
        let mut t = FlatTree::new();
        let root = t.begin_split(0, 1.0);
        let inner = t.begin_split(1, 5.0);
        t.push_leaf(0);
        t.finish_split(inner);
        t.push_leaf(1);
        t.finish_split(root);
        t.push_leaf(2);
        t
    }

    #[test]
    fn builder_produces_preorder_layout() {
        let t = two_level();
        assert_eq!(t.len(), 5);
        let n = t.nodes();
        assert_eq!(n[0].feature, 0);
        assert_eq!(n[0].right, 4, "right child after the whole left subtree");
        assert_eq!(n[1].feature, 1);
        assert_eq!(n[1].right, 3);
        assert_eq!(n[2].feature, LEAF);
        assert_eq!(n[4].right, 2, "leaf stores its class");
    }

    #[test]
    fn iterative_predict_follows_thresholds() {
        let t = two_level();
        assert_eq!(t.predict(&[0.0, 3.0]), 0);
        assert_eq!(t.predict(&[0.0, 9.0]), 1);
        assert_eq!(t.predict(&[2.0, 0.0]), 2);
        assert_eq!(t.predict(&[1.0, 5.0]), 0, "boundaries go left");
    }

    #[test]
    fn predict_all_matches_predict() {
        let t = two_level();
        let rows: Vec<Vec<f64>> =
            vec![vec![0.0, 3.0], vec![0.0, 9.0], vec![2.0, 0.0], vec![1.0, 5.0]];
        let batch = t.predict_all(&rows);
        let single: Vec<u32> = rows.iter().map(|r| t.predict(r)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn depth_and_leaves() {
        let t = two_level();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaves(), 3);
        let mut stump = FlatTree::new();
        stump.push_leaf(7);
        assert_eq!(stump.depth(), 0);
        assert_eq!(stump.leaves(), 1);
        assert_eq!(stump.predict(&[]), 7);
        assert_eq!(FlatTree::new().depth(), 0);
    }

    #[test]
    #[should_panic(expected = "leaf sentinel")]
    fn split_on_sentinel_feature_is_rejected() {
        FlatTree::new().begin_split(LEAF, 0.0);
    }

    #[test]
    fn predict_lanes_matches_scalar_on_mixed_depth_lanes() {
        let t = two_level();
        // Lanes park at different levels: some reach the depth-1 leaf C
        // immediately, others descend to depth 2 — exercising the
        // masked self-loop while live lanes keep stepping.
        let rows: Vec<Vec<f64>> = vec![
            vec![0.0, 3.0],
            vec![2.0, 0.0],
            vec![0.0, 9.0],
            vec![1.0, 5.0],
            vec![9.0, 9.0],
            vec![0.5, 5.0],
            vec![1.0, 5.1],
            vec![-1.0, -1.0],
        ];
        let blocks = LaneBlocks::from_rows(&rows, 2);
        let lanes = t.predict_lanes(blocks.block(0));
        for (l, row) in rows.iter().enumerate() {
            assert_eq!(lanes[l], t.predict(row), "lane {l}");
        }
    }

    #[test]
    fn predict_blocked_matches_predict_all_on_ragged_tails() {
        let t = two_level();
        for n in [0usize, 1, 7, 8, 9, 16, 19] {
            let rows: Vec<Vec<f64>> =
                (0..n).map(|i| vec![i as f64 * 0.3 - 1.0, (i % 7) as f64]).collect();
            let blocks = LaneBlocks::from_rows(&rows, 2);
            assert_eq!(t.predict_blocked(&blocks), t.predict_all(&rows), "n = {n}");
        }
    }

    #[test]
    fn predict_lanes_handles_leaf_only_tree_without_features() {
        let mut stump = FlatTree::new();
        stump.push_leaf(7);
        let rows: Vec<Vec<f64>> = vec![vec![]; 3];
        let blocks = LaneBlocks::from_rows(&rows, 0);
        assert_eq!(stump.predict_blocked(&blocks), vec![7, 7, 7]);
    }
}
