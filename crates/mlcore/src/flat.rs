//! Flat pre-order tree arenas.
//!
//! A `Box`-recursive tree costs a heap allocation, a pointer chase and
//! unpredictable locality per level of every `predict`. The arena
//! stores nodes in **pre-order** in one `Vec`: a split's left child is
//! implicitly the next node, only the right child needs an offset, and
//! descending a path walks mostly-forward through one allocation.
//! Pre-order is also exactly the order of the `bs-forest v1` wire
//! format, so serialization is a linear scan and the format stays
//! byte-identical to the boxed original.

use serde::{Deserialize, Serialize};

/// Sentinel feature index marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// One arena node.
///
/// Splits: `feature`/`threshold` describe the test (`x[feature] <=
/// threshold` goes left), the left child sits at `index + 1`, and
/// `right` is the right child's arena index. Leaves: `feature` is
/// [`LEAF`], `right` holds the class, `threshold` is zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlatNode {
    /// Split feature, or [`LEAF`].
    pub feature: u32,
    /// Split threshold; zero for leaves.
    pub threshold: f64,
    /// Right-child index for splits; class for leaves.
    pub right: u32,
}

/// A pre-order flat tree, grown through [`FlatTree::push_leaf`] /
/// [`FlatTree::begin_split`] / [`FlatTree::finish_split`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
}

impl FlatTree {
    /// An empty tree.
    pub fn new() -> Self {
        FlatTree { nodes: Vec::new() }
    }

    /// Append a leaf for `class`; returns its index.
    pub fn push_leaf(&mut self, class: u32) -> usize {
        self.nodes.push(FlatNode { feature: LEAF, threshold: 0.0, right: class });
        self.nodes.len() - 1
    }

    /// Append a split whose left subtree will be built next (pre-order).
    /// Returns the split's index for [`FlatTree::finish_split`].
    pub fn begin_split(&mut self, feature: u32, threshold: f64) -> usize {
        assert_ne!(feature, LEAF, "feature index collides with the leaf sentinel");
        self.nodes.push(FlatNode { feature, threshold, right: 0 });
        self.nodes.len() - 1
    }

    /// Seal split `idx` after its left subtree is fully built: the next
    /// node appended becomes its right child.
    pub fn finish_split(&mut self, idx: usize) {
        self.nodes[idx].right = self.nodes.len() as u32;
    }

    /// Iterative root-to-leaf descent; returns the class.
    pub fn predict(&self, x: &[f64]) -> u32 {
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.feature == LEAF {
                return node.right;
            }
            i = if x[node.feature as usize] <= node.threshold {
                i + 1
            } else {
                node.right as usize
            };
        }
    }

    /// Batch predict: one pass over the arena-resident tree per row.
    pub fn predict_all<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<u32> {
        rows.iter().map(|r| self.predict(r.as_ref())).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in pre-order (serialization support).
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.feature == LEAF).count()
    }

    /// Depth (a leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max = 0;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((i, d)) = stack.pop() {
            let node = &self.nodes[i];
            if node.feature == LEAF {
                max = max.max(d);
            } else {
                stack.push((i + 1, d + 1));
                stack.push((node.right as usize, d + 1));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 <= 1.0 ? (x1 <= 5.0 ? A : B) : C
    fn two_level() -> FlatTree {
        let mut t = FlatTree::new();
        let root = t.begin_split(0, 1.0);
        let inner = t.begin_split(1, 5.0);
        t.push_leaf(0);
        t.finish_split(inner);
        t.push_leaf(1);
        t.finish_split(root);
        t.push_leaf(2);
        t
    }

    #[test]
    fn builder_produces_preorder_layout() {
        let t = two_level();
        assert_eq!(t.len(), 5);
        let n = t.nodes();
        assert_eq!(n[0].feature, 0);
        assert_eq!(n[0].right, 4, "right child after the whole left subtree");
        assert_eq!(n[1].feature, 1);
        assert_eq!(n[1].right, 3);
        assert_eq!(n[2].feature, LEAF);
        assert_eq!(n[4].right, 2, "leaf stores its class");
    }

    #[test]
    fn iterative_predict_follows_thresholds() {
        let t = two_level();
        assert_eq!(t.predict(&[0.0, 3.0]), 0);
        assert_eq!(t.predict(&[0.0, 9.0]), 1);
        assert_eq!(t.predict(&[2.0, 0.0]), 2);
        assert_eq!(t.predict(&[1.0, 5.0]), 0, "boundaries go left");
    }

    #[test]
    fn predict_all_matches_predict() {
        let t = two_level();
        let rows: Vec<Vec<f64>> =
            vec![vec![0.0, 3.0], vec![0.0, 9.0], vec![2.0, 0.0], vec![1.0, 5.0]];
        let batch = t.predict_all(&rows);
        let single: Vec<u32> = rows.iter().map(|r| t.predict(r)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn depth_and_leaves() {
        let t = two_level();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaves(), 3);
        let mut stump = FlatTree::new();
        stump.push_leaf(7);
        assert_eq!(stump.depth(), 0);
        assert_eq!(stump.leaves(), 1);
        assert_eq!(stump.predict(&[]), 7);
        assert_eq!(FlatTree::new().depth(), 0);
    }

    #[test]
    #[should_panic(expected = "leaf sentinel")]
    fn split_on_sentinel_feature_is_rejected() {
        FlatTree::new().begin_split(LEAF, 0.0);
    }
}
