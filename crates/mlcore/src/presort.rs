//! Presorted per-feature index arrays with stable partition.
//!
//! The reference CART re-sorts the node's sample indices for every
//! feature at every node (`O(nodes · features · n log n)`). The classic
//! fix (SLIQ/SPRINT lineage) is to arg-sort each feature column **once
//! per fit** and keep every feature's array partitioned into
//! contiguous per-node segments as the tree grows: a node owns
//! `[lo, hi)` in *every* feature array, each holding the same position
//! set sorted by that feature's values.
//!
//! The invariant that makes the fast path bit-identical to the
//! reference is *stability*: the initial argsort is stable (ties keep
//! position order) and [`PresortedColumns::partition`] is a stable
//! partition, so each child segment is exactly what the reference
//! would compute by stable-sorting the child's index list from
//! scratch — stable sorting commutes with predicate filtering.

use crate::matrix::ColumnarView;

/// Arg-sorted position arrays, one per feature, segment-partitioned in
/// place as a tree grows.
#[derive(Debug, Clone)]
pub struct PresortedColumns {
    /// `per_feature[f]` holds all positions sorted ascending by
    /// feature `f`'s value (stable: ties in position order).
    per_feature: Vec<Vec<u32>>,
    /// Partition side per position, written by
    /// [`PresortedColumns::mark_by_threshold`].
    go_left: Vec<bool>,
    /// Scratch for the right-hand side during stable partition.
    scratch: Vec<u32>,
}

impl PresortedColumns {
    /// Arg-sort every column of `view` once (`O(features · n log n)`).
    pub fn new(view: &ColumnarView) -> Self {
        let rows = view.rows();
        let per_feature = (0..view.n_features())
            .map(|f| {
                let col = view.col(f);
                let mut order: Vec<u32> = (0..rows as u32).collect();
                // Stable: ties keep ascending position order, exactly
                // like the reference's stable sort of its index list.
                // (Sorting contiguous (value, position) pairs unstably
                // was tried and measured ~2x slower end to end — the
                // 16-byte elements double the bytes every merge moves.)
                order.sort_by(|&a, &b| {
                    col[a as usize].partial_cmp(&col[b as usize]).expect("finite features")
                });
                order
            })
            .collect();
        PresortedColumns {
            per_feature,
            go_left: vec![false; rows],
            scratch: Vec::with_capacity(rows),
        }
    }

    /// Feature `f`'s positions for the node segment `[lo, hi)`, in
    /// ascending value order.
    pub fn feature_segment(&self, f: usize, lo: usize, hi: usize) -> &[u32] {
        &self.per_feature[f][lo..hi]
    }

    /// Mark each position in `[lo, hi)` with its split side:
    /// `col[position] <= threshold` goes left. `col` must be the value
    /// column of `f` (any feature's segment enumerates the same set;
    /// passing `f`'s keeps the walk contiguous).
    pub fn mark_by_threshold(
        &mut self,
        f: usize,
        lo: usize,
        hi: usize,
        col: &[f64],
        threshold: f64,
    ) {
        let Self { per_feature, go_left, .. } = self;
        for &p in &per_feature[f][lo..hi] {
            go_left[p as usize] = col[p as usize] <= threshold;
        }
    }

    /// Stable-partition every feature's `[lo, hi)` segment by the
    /// marks: left-marked positions compact to the front, each side
    /// keeping its value order. Returns the left child's size, so the
    /// children own `[lo, lo + n_left)` and `[lo + n_left, hi)`.
    pub fn partition(&mut self, lo: usize, hi: usize) -> usize {
        let Self { per_feature, go_left, scratch } = self;
        let mut n_left = 0;
        for order in per_feature.iter_mut() {
            scratch.clear();
            let mut w = lo;
            for r in lo..hi {
                let p = order[r];
                if go_left[p as usize] {
                    order[w] = p;
                    w += 1;
                } else {
                    scratch.push(p);
                }
            }
            order[w..hi].copy_from_slice(scratch);
            n_left = w - lo;
        }
        n_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rows: &[(&[f64], u32)]) -> ColumnarView {
        let mut v = ColumnarView::with_capacity(rows[0].0.len(), rows.len());
        for (features, label) in rows {
            v.push_row(features, *label);
        }
        v
    }

    #[test]
    fn argsort_is_stable_on_ties() {
        let v = view(&[(&[2.0, 1.0], 0), (&[1.0, 1.0], 0), (&[2.0, 1.0], 1), (&[0.0, 1.0], 1)]);
        let ps = PresortedColumns::new(&v);
        assert_eq!(ps.feature_segment(0, 0, 4), &[3, 1, 0, 2], "ties keep position order");
        assert_eq!(ps.feature_segment(1, 0, 4), &[0, 1, 2, 3], "all-equal column stays put");
    }

    /// Partitioning the presorted array must equal filtering the
    /// positions and re-sorting stably — the reference's behaviour.
    #[test]
    fn partition_matches_filter_then_stable_sort() {
        // Deliberately collision-heavy values from a tiny LCG.
        let mut h: u64 = 7;
        let mut rows = Vec::new();
        for _ in 0..64 {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rows.push(vec![((h >> 16) % 5) as f64, ((h >> 32) % 7) as f64]);
        }
        let mut v = ColumnarView::with_capacity(2, rows.len());
        for r in &rows {
            v.push_row(r, 0);
        }
        let mut ps = PresortedColumns::new(&v);
        let threshold = 2.0;
        ps.mark_by_threshold(0, 0, rows.len(), v.col(0), threshold);
        let n_left = ps.partition(0, rows.len());

        for f in 0..2 {
            let col = v.col(f);
            let mut expect_left: Vec<u32> =
                (0..rows.len() as u32).filter(|&p| rows[p as usize][0] <= threshold).collect();
            expect_left.sort_by(|&a, &b| col[a as usize].partial_cmp(&col[b as usize]).unwrap());
            let mut expect_right: Vec<u32> =
                (0..rows.len() as u32).filter(|&p| rows[p as usize][0] > threshold).collect();
            expect_right.sort_by(|&a, &b| col[a as usize].partial_cmp(&col[b as usize]).unwrap());
            assert_eq!(ps.feature_segment(f, 0, n_left), &expect_left[..]);
            assert_eq!(ps.feature_segment(f, n_left, rows.len()), &expect_right[..]);
        }
    }

    #[test]
    fn nested_partitions_keep_segments_consistent() {
        let v =
            view(&[(&[3.0], 0), (&[1.0], 1), (&[4.0], 0), (&[1.0], 1), (&[5.0], 0), (&[9.0], 1)]);
        let mut ps = PresortedColumns::new(&v);
        ps.mark_by_threshold(0, 0, 6, v.col(0), 3.5);
        let n_left = ps.partition(0, 6);
        assert_eq!(n_left, 3);
        assert_eq!(ps.feature_segment(0, 0, 3), &[1, 3, 0]);
        // Partition only the right child; the left segment is untouched.
        // Right segment holds positions [2, 4, 5] (values 4, 5, 9):
        // only value 4 is ≤ 4.5.
        ps.mark_by_threshold(0, 3, 6, v.col(0), 4.5);
        let n_left2 = ps.partition(3, 6);
        assert_eq!(n_left2, 1);
        assert_eq!(ps.feature_segment(0, 0, 3), &[1, 3, 0]);
        assert_eq!(ps.feature_segment(0, 3, 4), &[2]);
        assert_eq!(ps.feature_segment(0, 4, 6), &[4, 5]);
    }
}
