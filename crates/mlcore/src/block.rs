//! Transposed row-block layout for lane-parallel prediction.
//!
//! Row-major `xs[row][feature]` storage puts the eight rows a lane
//! batch wants at stride `n_features` apart — every per-level gather
//! touches eight cache lines. [`LaneBlocks`] transposes each block of
//! [`LANES`] rows to feature-major order, so the eight values of one
//! feature sit contiguously: `data[(block · n_features + feature) ·
//! LANES + lane]`. One transposition serves every tree of a forest.
//!
//! The last block is zero-padded when `n_rows % LANES != 0`; padding
//! lanes traverse the tree like any other row (the arena indices they
//! follow are always valid) and their outputs are simply discarded by
//! [`crate::FlatTree::predict_blocked`].

use bs_simd::LANES;

/// Feature-major blocks of [`LANES`] rows each (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneBlocks {
    data: Vec<f64>,
    n_rows: usize,
    n_features: usize,
}

impl LaneBlocks {
    /// Transpose `rows` (each of length `n_features`) into lane blocks.
    ///
    /// # Panics
    /// If any row's length differs from `n_features`.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R], n_features: usize) -> Self {
        let n_rows = rows.len();
        let n_blocks = n_rows.div_ceil(LANES);
        let mut data = vec![0.0; n_blocks * n_features * LANES];
        for (r, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), n_features, "feature arity mismatch in row {r}");
            let base = (r / LANES) * n_features * LANES + r % LANES;
            for (f, &v) in row.iter().enumerate() {
                data[base + f * LANES] = v;
            }
        }
        LaneBlocks { data, n_rows, n_features }
    }

    /// Number of (real, unpadded) rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Features per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of [`LANES`]-row blocks (the last may be ragged).
    pub fn n_blocks(&self) -> usize {
        self.n_rows.div_ceil(LANES)
    }

    /// Block `b` as a feature-major slice of `n_features × LANES`
    /// values: feature `f` of lane `l` is at `f * LANES + l`.
    pub fn block(&self, b: usize) -> &[f64] {
        let w = self.n_features * LANES;
        &self.data[b * w..(b + 1) * w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposes_feature_major_with_zero_padding() {
        let rows: Vec<Vec<f64>> = (0..10).map(|r| vec![r as f64, 100.0 + r as f64]).collect();
        let blocks = LaneBlocks::from_rows(&rows, 2);
        assert_eq!(blocks.n_rows(), 10);
        assert_eq!(blocks.n_features(), 2);
        assert_eq!(blocks.n_blocks(), 2);
        let b0 = blocks.block(0);
        for l in 0..LANES {
            assert_eq!(b0[l], l as f64, "feature 0 lane {l}");
            assert_eq!(b0[LANES + l], 100.0 + l as f64, "feature 1 lane {l}");
        }
        let b1 = blocks.block(1);
        assert_eq!(&b1[..2], &[8.0, 9.0], "ragged tail rows");
        assert_eq!(&b1[2..LANES], &[0.0; LANES - 2], "padding lanes are zero");
    }

    #[test]
    fn empty_and_exact_multiples() {
        let none: Vec<Vec<f64>> = vec![];
        let b = LaneBlocks::from_rows(&none, 3);
        assert_eq!(b.n_blocks(), 0);
        assert_eq!(b.n_rows(), 0);
        let full: Vec<Vec<f64>> = (0..LANES).map(|r| vec![r as f64]).collect();
        let b = LaneBlocks::from_rows(&full, 1);
        assert_eq!(b.n_blocks(), 1);
        assert_eq!(b.block(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn zero_features_yields_empty_blocks() {
        let rows: Vec<Vec<f64>> = vec![vec![]; 5];
        let b = LaneBlocks::from_rows(&rows, 0);
        assert_eq!(b.n_rows(), 5);
        assert_eq!(b.n_blocks(), 1);
        assert!(b.block(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn mismatched_row_is_rejected() {
        LaneBlocks::from_rows(&[vec![1.0, 2.0], vec![3.0]], 2);
    }
}
