//! Column-major and flat row-major training matrices.

use serde::{Deserialize, Serialize};

/// Column-major training data: one contiguous `Vec<f64>` per feature
/// plus a parallel label array.
///
/// Rows are *positions*, not dataset indices: a bootstrap sample that
/// repeats a dataset row occupies several positions. Split sweeps walk
/// [`ColumnarView::col`] linearly; labels are `u32` so the label array
/// stays half the size of the `usize` original.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarView {
    cols: Vec<Vec<f64>>,
    labels: Vec<u32>,
}

impl ColumnarView {
    /// An empty view with `n_features` columns and room for `rows`.
    pub fn with_capacity(n_features: usize, rows: usize) -> Self {
        ColumnarView {
            cols: (0..n_features).map(|_| Vec::with_capacity(rows)).collect(),
            labels: Vec::with_capacity(rows),
        }
    }

    /// Append one row. `features` must have exactly one value per
    /// column.
    pub fn push_row(&mut self, features: &[f64], label: u32) {
        assert_eq!(features.len(), self.cols.len(), "feature arity mismatch");
        for (col, v) in self.cols.iter_mut().zip(features) {
            col.push(*v);
        }
        self.labels.push(label);
    }

    /// Number of rows (positions).
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    /// The contiguous value column for feature `f`, indexed by
    /// position.
    pub fn col(&self, f: usize) -> &[f64] {
        &self.cols[f]
    }

    /// Labels indexed by position.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The label at `position` as a class index.
    pub fn label(&self, position: u32) -> usize {
        self.labels[position as usize] as usize
    }
}

/// Flat row-major storage: all rows in one allocation with a fixed
/// stride, for kernel methods that consume whole feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowMatrix {
    data: Vec<f64>,
    dim: usize,
}

impl RowMatrix {
    /// An empty matrix of `dim`-wide rows.
    pub fn new(dim: usize) -> Self {
        RowMatrix { data: Vec::new(), dim }
    }

    /// Append one row of exactly `dim` values.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contiguous row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// A new matrix holding copies of the given rows, in order
    /// (one-vs-one submatrix extraction).
    pub fn select(&self, rows: &[usize]) -> RowMatrix {
        let mut out = RowMatrix { data: Vec::with_capacity(rows.len() * self.dim), dim: self.dim };
        for &r in rows {
            out.data.extend_from_slice(self.row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columnar_view_round_trips_rows() {
        let mut v = ColumnarView::with_capacity(2, 3);
        v.push_row(&[1.0, 10.0], 0);
        v.push_row(&[2.0, 20.0], 1);
        v.push_row(&[3.0, 30.0], 0);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.n_features(), 2);
        assert_eq!(v.col(0), &[1.0, 2.0, 3.0]);
        assert_eq!(v.col(1), &[10.0, 20.0, 30.0]);
        assert_eq!(v.labels(), &[0, 1, 0]);
        assert_eq!(v.label(1), 1);
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn columnar_view_checks_arity() {
        let mut v = ColumnarView::with_capacity(2, 1);
        v.push_row(&[1.0], 0);
    }

    #[test]
    fn row_matrix_select_copies_in_order() {
        let mut m = RowMatrix::new(2);
        for i in 0..4 {
            m.push_row(&[i as f64, -(i as f64)]);
        }
        assert_eq!(m.rows(), 4);
        assert_eq!(m.row(2), &[2.0, -2.0]);
        let s = m.select(&[3, 1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[3.0, -3.0]);
        assert_eq!(s.row(1), &[1.0, -1.0]);
    }

    #[test]
    fn zero_dim_row_matrix_is_empty() {
        let m = RowMatrix::new(0);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.dim(), 0);
    }
}
