//! `bs-mlcore` — columnar training-engine primitives for the ML layer.
//!
//! The paper's sensor retrains classifiers constantly: §III-E refits
//! across time-separated windows, §IV runs CART / random forest /
//! kernel SVM under 10-run majority votes and 50-repetition
//! cross-validation, so `fit` executes hundreds of times per
//! experiment. The seed implementations pay three classic prices on
//! that path: row-major `samples[i].features[f]` double-indirection,
//! per-node per-feature re-sorting inside CART's split search, and
//! `Box`-recursive tree nodes that scatter `predict` across the heap.
//! This crate provides the shared primitives the fast paths in `bs-ml`
//! are built from — following the `bs-fastmap` house pattern of a fast
//! engine whose behaviour is property-tested against a retained
//! executable reference:
//!
//! * [`ColumnarView`] — column-major training data: one contiguous
//!   `Vec<f64>` per feature plus a parallel label array, so a split
//!   sweep walks one cache-friendly column instead of hopping rows;
//! * [`PresortedColumns`] — arg-sorted per-feature index arrays,
//!   maintained across tree growth by stable in-place partition:
//!   sorting happens **once per fit** (`O(features · n log n)`) and
//!   each node costs `O(features · n)`, replacing the reference's
//!   `O(nodes · features · n log n)` re-sort;
//! * [`FlatTree`] — a pre-order `Vec<FlatNode>` arena with implicit
//!   left children and `u32` right offsets: iterative `predict`, batch
//!   [`FlatTree::predict_all`], no pointer chasing — plus the
//!   lane-parallel [`FlatTree::predict_lanes`] /
//!   [`FlatTree::predict_blocked`] level-synchronous descent
//!   (DESIGN.md §16);
//! * [`LaneBlocks`] — transposed row blocks for the lane path: each
//!   block of `bs_simd::LANES` rows stored feature-major so a
//!   per-level gather reads eight contiguous values;
//! * [`RowMatrix`] — flat row-major storage for kernel methods (one
//!   allocation, contiguous rows);
//! * [`GramCache`] — a per-machine kernel cache: full Gram matrix up
//!   to a size limit, bounded lazy row cache beyond it, so kernel
//!   entries are computed once per pair instead of once per access;
//! * [`argmax_first`] — the shared tie-break rule: the **first**
//!   maximum wins, so ties always resolve to the smaller index.
//!
//! # Determinism contract
//!
//! Every primitive here is deterministic and, used as `bs-ml` uses
//! them, *bit-identical* to the reference implementations: stable
//! argsort + stable partition reproduce exactly the orderings the
//! reference's per-node stable sorts produce, and [`GramCache`]
//! returns the same bits whether full or lazy because the kernel is
//! required to be symmetric and is evaluated identically either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod flat;
mod gram;
mod matrix;
mod presort;

pub use block::LaneBlocks;
pub use flat::{FlatNode, FlatTree, LEAF};
pub use gram::GramCache;
pub use matrix::{ColumnarView, RowMatrix};
pub use presort::PresortedColumns;

/// Index of the **first** maximum of `values` (ties break to the
/// smaller index). Returns 0 for an empty slice.
///
/// `std`'s `max_by_key` keeps the *last* maximum, which silently broke
/// the documented "ties break to the smaller class index" contract in
/// every voting path; this helper is the single place the rule lives.
pub fn argmax_first<T: PartialOrd>(values: &[T]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_takes_first_of_ties() {
        assert_eq!(argmax_first(&[1, 3, 3, 2]), 1);
        assert_eq!(argmax_first(&[5]), 0);
        assert_eq!(argmax_first(&[2, 2, 2]), 0);
        assert_eq!(argmax_first::<u32>(&[]), 0);
        assert_eq!(argmax_first(&[0.5, 0.75, 0.75]), 1);
    }

    #[test]
    fn argmax_first_disagrees_with_max_by_key_on_ties() {
        // The regression this crate exists to pin down: std's
        // max_by_key picks the *last* max.
        let votes = [4, 7, 7, 1];
        let last = votes.iter().enumerate().max_by_key(|(_, v)| **v).map(|(i, _)| i).unwrap();
        assert_eq!(last, 2);
        assert_eq!(argmax_first(&votes), 1);
    }
}
