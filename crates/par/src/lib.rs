//! `bs-par` — deterministic work-stealing parallelism for the
//! dns-backscatter pipeline.
//!
//! The paper's workload is embarrassingly parallel at three levels:
//! random-forest trees are independent given per-tree seeds, the 10-run
//! majority vote (§IV) is independent per run, and feature extraction
//! is independent per originator. This crate provides the one shared
//! substrate all of those use, with **zero external dependencies**
//! (`std::thread::scope` plus `std::sync` primitives):
//!
//! * [`par_map`] / [`par_map_range`] — map a function over a slice (or
//!   index range), preserving input order in the output;
//! * [`par_chunks`] — the same over fixed-size chunks, for fine-grained
//!   items where per-element task overhead would dominate;
//! * [`join`] — run two independent closures concurrently;
//! * [`scope`] — escape hatch: [`std::thread::scope`] semantics for
//!   irregular task shapes, with trace-context propagation;
//! * [`derive_seed`] — the splitmix64 seed-derivation scheme that makes
//!   parallel runs bit-identical to sequential ones.
//!
//! # Determinism contract
//!
//! Every primitive here returns results **in task-index order**,
//! regardless of which worker executed which task and in what order.
//! Callers must derive any per-task randomness from
//! `derive_seed(master, task_index)` — never from a shared sequential
//! RNG — and must do any floating-point reduction *after* the parallel
//! section, iterating results in index order. Under those two rules,
//! output is bit-identical at every thread count; the workspace's
//! determinism tests assert exactly that at `BS_THREADS=1` vs `8`.
//!
//! # Sizing
//!
//! The pool size resolves, in priority order: [`set_threads`] (the
//! CLI's `--threads` flag) → the `BS_THREADS` environment variable →
//! [`std::thread::available_parallelism`]. Workers are scoped threads
//! spawned per parallel region — there is no persistent pool to keep
//! alive or shut down, so borrows of stack data just work and a
//! panicking task propagates to the caller.
//!
//! # Scheduling
//!
//! Tasks are dealt to per-worker deques in contiguous index blocks;
//! each worker pops from the front of its own deque and, when empty,
//! steals the back half of a victim's. (The classic Chase–Lev deque —
//! `crossbeam` — is unavailable in the offline build environment, so
//! stealing uses `Mutex<VecDeque>`; with block-granularity tasks the
//! lock is cold.) Nested parallel regions run sequentially inside pool
//! workers, so the thread count stays bounded by the pool size at any
//! nesting depth: when the core pipeline parallelizes over windows,
//! the forests inside each window train sequentially, and when there
//! is only one window, the forest level parallelizes instead.
//!
//! # Telemetry
//!
//! Parallel regions publish through `bs-telemetry`: `par.tasks`
//! (counter: tasks executed), `par.steals` (counter: successful
//! steals), `par.threads` (gauge: resolved pool size), and `par.run`
//! (histogram: nanoseconds per parallel region).
//!
//! # Trace-context propagation
//!
//! When `bs-trace` causal tracing is enabled, every primitive captures
//! the caller's [`bs_trace::TraceContext`] before spawning workers and
//! enters it on each worker thread, so spans opened inside worker
//! tasks parent under the span that started the parallel region — at
//! any thread count. Workers also name their flight-recorder lanes
//! (`par-worker-N`), which become thread labels in the Chrome trace
//! export. Disabled, all of this costs one relaxed atomic load per
//! spawned worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod seed;

pub use pool::{join, par_chunks, par_map, par_map_range, scope, set_threads, threads, Scope};
pub use seed::derive_seed;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 4, 8] {
            let got = with_override(t, || par_map(&items, |_, x| x * 3 + 1));
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let seq: Vec<u64> = (0..257).map(|i| derive_seed(42, i)).collect();
        let par = with_override(8, || par_map_range(257, |i| derive_seed(42, i as u64)));
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |_, x| *x).is_empty());
        assert_eq!(par_map(&[7], |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        let items: Vec<usize> = (0..1013).collect();
        let sums = with_override(4, || par_chunks(&items, 64, |_, c| c.iter().sum::<usize>()));
        assert_eq!(sums.len(), 1013usize.div_ceil(64));
        assert_eq!(sums.iter().sum::<usize>(), 1013 * 1012 / 2);
        // Chunk indices map to the right slices.
        let firsts = with_override(4, || par_chunks(&items, 64, |ci, c| (ci, c[0])));
        for (ci, first) in firsts {
            assert_eq!(first, ci * 64);
        }
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = with_override(2, || join(|| 2 + 2, || "ok".to_string()));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        // Sequential path too.
        let (a, b) = with_override(1, || join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn inflight_gauge_returns_to_zero_after_region() {
        bs_telemetry::enable();
        let gauge = bs_telemetry::registry().gauge("par.inflight");
        let before = gauge.get();
        let _ = with_override(4, || par_map_range(500, |i| i * 2));
        // Concurrent tests also run regions; the invariant is that each
        // region nets to zero, so ours must not leave residue.
        assert_eq!(gauge.get(), before, "par.inflight leaked after a region");
    }

    #[test]
    fn nested_par_map_stays_bounded_and_correct() {
        // Outer 4-wide map, each task runs an inner map; inner maps
        // must fall back to sequential inside workers, and the result
        // must still be correct and ordered.
        let got = with_override(4, || {
            par_map_range(4, |outer| par_map_range(100, move |inner| outer * 100 + inner))
        });
        for (outer, inner_vec) in got.iter().enumerate() {
            assert_eq!(inner_vec.len(), 100);
            for (inner, v) in inner_vec.iter().enumerate() {
                assert_eq!(*v, outer * 100 + inner);
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        with_override(8, || {
            par_map_range(500, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn uneven_task_durations_still_order_results() {
        // Early indices sleep so later ones finish first; output order
        // must not depend on completion order.
        let got = with_override(4, || {
            par_map_range(16, |i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i * i
            })
        });
        assert_eq!(got, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn threads_is_at_least_one() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000u64 {
            seen.insert(derive_seed(0xDEAD_BEEF, i));
        }
        assert_eq!(seen.len(), 10_000, "derived seeds must not collide trivially");
        // Different masters diverge on the same index.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    /// span_id → (name, parent_id) for every SpanStart in `evs`.
    fn span_index(evs: &[bs_trace::Event]) -> std::collections::BTreeMap<u64, (&'static str, u64)> {
        evs.iter()
            .filter_map(|e| match e.kind {
                bs_trace::EventKind::SpanStart { name } => Some((e.span_id, (name, e.parent_id))),
                _ => None,
            })
            .collect()
    }

    /// Whether `ancestor` appears on the parent chain starting at `id`.
    fn has_ancestor(
        index: &std::collections::BTreeMap<u64, (&'static str, u64)>,
        mut id: u64,
        ancestor: u64,
    ) -> bool {
        for _ in 0..64 {
            if id == ancestor {
                return true;
            }
            id = match index.get(&id) {
                Some((_, parent)) => *parent,
                None => return false,
            };
        }
        false
    }

    #[test]
    fn worker_spans_parent_under_the_spawning_stage() {
        let (root_ctx, root_lane, evs) = with_override(4, || {
            bs_trace::enable();
            bs_trace::drain();
            let root = bs_trace::span("par.test.stage");
            let root_ctx = root.context().expect("root context");
            par_map_range(16, |i| {
                let _s = bs_trace::span("par.test.task");
                i
            });
            drop(root);
            let evs = bs_trace::drain();
            bs_trace::disable();
            let root_start = evs
                .iter()
                .find(|e| {
                    matches!(e.kind, bs_trace::EventKind::SpanStart { name } if name == "par.test.stage")
                })
                .expect("root span recorded");
            (root_ctx, root_start.lane, evs)
        });
        let index = span_index(&evs);
        let tasks: Vec<&bs_trace::Event> = evs
            .iter()
            .filter(|e| {
                matches!(e.kind, bs_trace::EventKind::SpanStart { name } if name == "par.test.task")
            })
            .collect();
        assert_eq!(tasks.len(), 16, "every task recorded its span");
        for t in &tasks {
            assert_eq!(t.trace_id, root_ctx.trace_id, "one causal tree");
            let (parent_name, _) = index[&t.parent_id];
            assert_eq!(parent_name, "par.run", "tasks nest under the parallel region span");
            assert!(
                has_ancestor(&index, t.parent_id, root_ctx.span_id),
                "worker span chain reaches the spawning stage"
            );
            assert_ne!(t.lane, root_lane, "tasks ran on worker threads, not the caller's");
        }
        let names = bs_trace::lane_names();
        assert!(
            names.iter().any(|(_, n)| n.starts_with("par-worker-")),
            "workers name their lanes, got {names:?}"
        );
    }

    #[test]
    fn join_and_scope_propagate_context() {
        let evs = with_override(2, || {
            bs_trace::enable();
            bs_trace::drain();
            {
                let _root = bs_trace::span("par.test.jsroot");
                join(
                    || {
                        let _a = bs_trace::span("par.test.join.a");
                    },
                    || {
                        let _b = bs_trace::span("par.test.join.b");
                    },
                );
                scope(|s| {
                    s.spawn(|| {
                        let _c = bs_trace::span("par.test.scope.child");
                    });
                });
            }
            let evs = bs_trace::drain();
            bs_trace::disable();
            evs
        });
        let index = span_index(&evs);
        let root_id = *index
            .iter()
            .find(|(_, (name, _))| *name == "par.test.jsroot")
            .map(|(id, _)| id)
            .expect("root recorded");
        for child in ["par.test.join.a", "par.test.join.b", "par.test.scope.child"] {
            let (&id, _) = index
                .iter()
                .find(|(_, (name, _))| *name == child)
                .unwrap_or_else(|| panic!("{child} recorded"));
            assert!(has_ancestor(&index, id, root_id), "{child} parents under the root");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(2);
        let r = std::panic::catch_unwind(|| {
            par_map_range(8, |i| if i == 5 { panic!("task boom") } else { i });
        });
        set_threads(0);
        assert!(r.is_err(), "a panicking task must fail the parallel region");
    }
}
