//! Per-task seed derivation.

/// Derive an independent per-task seed from a master seed and a stable
/// task index (splitmix64 over their combination).
///
/// This is the workspace-wide scheme behind the determinism contract:
/// task `i` gets the same seed whether it runs first on one thread or
/// last on eight, so randomized stages (bootstrap sampling, per-split
/// feature subsampling, the 10-run vote) produce bit-identical output
/// at any thread count. The splitmix64 finalizer scatters consecutive
/// indices across the full 64-bit space, so per-task `StdRng` streams
/// are effectively uncorrelated.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // index + 1 keeps (0, 0) off the finalizer's fixed point at zero.
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_index_sensitive() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }

    #[test]
    fn zero_master_zero_index_is_not_zero() {
        // StdRng::seed_from_u64(0) is fine, but a degenerate all-zero
        // output would correlate the (0, 0) task with unseeded streams.
        assert_ne!(derive_seed(0, 0), 0);
    }
}
