//! The scoped work-stealing pool.
//!
//! There are no persistent worker threads: each parallel region spawns
//! its workers inside [`std::thread::scope`], so closures may borrow
//! stack data freely and a panicking task unwinds into the caller.
//! What *is* global is the sizing policy ([`threads`]) and the
//! nested-region guard (a thread-local flag marking pool workers, under
//! which nested regions degrade to sequential execution).

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Explicit override (0 = none). Set by [`set_threads`] / `--threads`.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default: `BS_THREADS` env, else available cores.
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True on threads spawned as pool workers; nested parallel
    /// regions on such threads run sequentially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The resolved pool size: [`set_threads`] override → `BS_THREADS`
/// environment variable → [`std::thread::available_parallelism`].
/// Always at least 1.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    *DEFAULT.get_or_init(|| {
        std::env::var("BS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            })
    })
}

/// Override the pool size for the whole process (the CLI's `--threads`
/// flag). `0` clears the override, returning to `BS_THREADS` / core
/// count. Takes effect for parallel regions started after the call.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Whether the current thread is a pool worker (nested regions run
/// sequentially there).
fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Like [`std::thread::scope`], for irregular task shapes the
/// structured primitives don't fit, with one addition: the caller's
/// `bs-trace` context is captured at entry and every [`Scope::spawn`]ed
/// thread runs inside it, so spans opened in spawned closures parent
/// under the span that was current when the scope began. Spawned
/// threads are *not* counted against the pool size; prefer [`par_map`]
/// / [`join`] where possible.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let ctx = bs_trace::current_context();
    std::thread::scope(|inner| f(&Scope { inner, ctx }))
}

/// The handle passed to [`scope`]'s closure; a thin wrapper over
/// [`std::thread::Scope`] whose [`spawn`](Scope::spawn) enters the
/// scope-entry trace context on the new thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<bs_trace::TraceContext>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread running `f` under the trace context that
    /// was current when the enclosing [`scope`] was entered.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let ctx = self.ctx;
        self.inner.spawn(move || {
            let _ctx = bs_trace::enter_context(ctx);
            f()
        })
    }
}

/// Map `f` over `items` in parallel; `f` receives `(index, &item)` and
/// the output preserves input order exactly.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Map `f` over the index range `0..n` in parallel, preserving index
/// order in the output. The deterministic core of every other
/// primitive: `f` must depend only on its index argument (derive
/// per-task RNG seeds via [`crate::derive_seed`]).
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let t = if n <= 1 || in_worker() { 1 } else { threads().min(n) };
    if t <= 1 {
        bs_telemetry::counter_add("par.tasks", n as u64);
        return (0..n).map(f).collect();
    }
    run_stealing(n, t, &f)
}

/// Map `f` over `chunk_size`-sized chunks of `items` in parallel; `f`
/// receives `(chunk_index, chunk)` and outputs stay in chunk order.
/// Use for fine-grained items where one task per element would drown
/// in scheduling overhead.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size >= 1, "chunk_size must be at least 1");
    let chunks = items.len().div_ceil(chunk_size);
    par_map_range(chunks, |ci| {
        let lo = ci * chunk_size;
        let hi = (lo + chunk_size).min(items.len());
        f(ci, &items[lo..hi])
    })
}

/// Run two independent closures, concurrently when a core is free.
/// `b` runs on a spawned scoped thread, `a` on the caller's.
pub fn join<RA, RB>(a: impl FnOnce() -> RA, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RB: Send,
{
    if threads() <= 1 || in_worker() {
        return (a(), b());
    }
    let ctx = bs_trace::current_context();
    let base_frames =
        if bs_trace::is_profiling() { bs_trace::stack::snapshot_current() } else { Vec::new() };
    let base_frames = &base_frames;
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _ctx = bs_trace::enter_context(ctx);
            let _base = if base_frames.is_empty() {
                None
            } else {
                Some(bs_trace::stack::enter_base(base_frames, "par-join"))
            };
            b()
        });
        let ra = a();
        (ra, hb.join().expect("join: spawned side panicked"))
    })
}

/// The work-stealing execution of `n` tasks on `t` workers.
///
/// Indices are dealt to per-worker deques in contiguous blocks; a
/// worker pops its own front (preserving cache-friendly sweep order)
/// and steals the back half of a victim's deque when dry. Tasks are
/// never duplicated: ownership moves under the victim's lock. A worker
/// retires after one full failed steal sweep — any work it missed is
/// in the hands of the thief that took it.
fn run_stealing<U, F>(n: usize, t: usize, f: &F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // The telemetry span also opens a trace span on this thread, so
    // capturing the context *after* it means worker child spans parent
    // under `par.run` → enclosing stage → root.
    let _span = bs_telemetry::span("par.run");
    let ctx = bs_trace::current_context();
    // Base frames for the profiler: workers install the spawning
    // thread's frame stack so their samples nest under the stage that
    // fanned out (empty unless profiling is on).
    let base_frames =
        if bs_trace::is_profiling() { bs_trace::stack::snapshot_current() } else { Vec::new() };
    let base_frames = &base_frames;
    bs_telemetry::gauge_set("par.threads", t as i64);
    // Region depth for the live watchdog's backlog rule: tasks still
    // queued or running across all concurrent regions. Net zero after
    // every region, so a scrape seeing it high means work in flight.
    bs_telemetry::gauge_add("par.inflight", n as i64);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..t)
        .map(|w| {
            let lo = w * n / t;
            let hi = (w + 1) * n / t;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let steals = AtomicU64::new(0);
    let queues = &queues;
    let steals = &steals;

    let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..t)
            .map(|w| {
                s.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    let _ctx = bs_trace::enter_context(ctx);
                    if bs_trace::is_enabled() {
                        bs_trace::name_lane(&format!("par-worker-{w}"));
                    }
                    let _base = if base_frames.is_empty() {
                        None
                    } else {
                        Some(bs_trace::stack::enter_base(base_frames, &format!("par-worker-{w}")))
                    };
                    let mut done = Vec::with_capacity(n / t + 1);
                    while let Some(i) = next_task(queues, w, steals) {
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    });

    bs_telemetry::counter_add("par.tasks", n as u64);
    bs_telemetry::counter_add("par.steals", steals.load(Ordering::Relaxed));
    bs_telemetry::gauge_add("par.inflight", -(n as i64));

    // Reassemble in task-index order, independent of execution order.
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for part in parts {
        for (i, u) in part {
            debug_assert!(out[i].is_none(), "task {i} executed twice");
            out[i] = Some(u);
        }
    }
    out.into_iter().map(|u| u.expect("every task index executed")).collect()
}

/// Pop the worker's own deque, or steal the back half of another's.
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize, steals: &AtomicU64) -> Option<usize> {
    if let Some(i) = lock(&queues[w]).pop_front() {
        return Some(i);
    }
    let t = queues.len();
    for k in 1..t {
        let victim = (w + k) % t;
        let mut vq = lock(&queues[victim]);
        if vq.is_empty() {
            continue;
        }
        // Take the back half (at least one task), release the victim,
        // then stock our own (empty — only we push to it) deque.
        let keep = vq.len() / 2;
        let stolen = vq.split_off(keep);
        drop(vq);
        steals.fetch_add(1, Ordering::Relaxed);
        let mut own = lock(&queues[w]);
        debug_assert!(own.is_empty());
        *own = stolen;
        if let Some(i) = own.pop_front() {
            return Some(i);
        }
    }
    None
}

/// Lock a deque, surviving poison: a panicked worker aborts the region
/// anyway (its join handle propagates), so the queue state is moot.
fn lock(q: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    q.lock().unwrap_or_else(|e| e.into_inner())
}
