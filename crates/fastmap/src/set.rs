//! The hybrid sorted-array/bitmap `u32` set.

use crate::FastMap;

/// Elements per chunk before a sorted array promotes to a bitmap.
/// 4096 × 2 bytes = 8 KiB = exactly the bitmap's size, so promotion
/// never grows a chunk's footprint past the bitmap bound.
const ARRAY_MAX: usize = 4096;

/// `u64` words in a chunk bitmap (covers the chunk's 65 536 values).
const BITMAP_WORDS: usize = 1024;

/// One chunk's storage: the 2^16 values sharing the key's high bits.
#[derive(Clone, Debug)]
enum Chunk {
    /// Sorted, deduplicated low-16-bit values. The common case: an
    /// originator's queriers scatter thinly over the address space.
    Array(Vec<u16>),
    /// Dense chunk (> [`ARRAY_MAX`] entries): one bit per value. Scan
    /// storms hammering a /16 land here and insert in O(1).
    Bitmap(Box<[u64; BITMAP_WORDS]>),
}

impl Chunk {
    /// Per-chunk cardinality; a test-only cross-check against the
    /// set-global `len` counter.
    #[cfg(test)]
    fn len(&self) -> usize {
        match self {
            Chunk::Array(v) => v.len(),
            Chunk::Bitmap(b) => b.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }
}

/// A set of `u32` values (packed IPv4 addresses), chunked by the high
/// 16 bits: sparse chunks are sorted `Vec<u16>` arrays, dense chunks
/// are 8 KiB bitmaps. Insert is O(chunk) worst case for arrays (a
/// bounded 8 KiB memmove) and O(1) for bitmaps; [`CompactSet::sorted`]
/// yields ascending order, which is what flush-time conversion to the
/// pipeline's `BTreeSet<Ipv4Addr>` representation consumes linearly.
///
/// ```
/// use bs_fastmap::CompactSet;
/// let mut s = CompactSet::new();
/// assert!(s.insert(7));
/// assert!(!s.insert(7));
/// assert!(s.contains(7) && !s.contains(8));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CompactSet {
    chunks: FastMap<u32, Chunk>,
    len: usize,
}

impl CompactSet {
    /// An empty set; allocates nothing until the first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `x`; `true` when it was not already present.
    pub fn insert(&mut self, x: u32) -> bool {
        let (chunk, _) = self.chunks.get_or_insert_with(x >> 16, || Chunk::Array(Vec::new()));
        let low = x as u16;
        let inserted = match chunk {
            Chunk::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() >= ARRAY_MAX {
                        let mut bits = Box::new([0u64; BITMAP_WORDS]);
                        for &e in v.iter() {
                            bits[(e >> 6) as usize] |= 1u64 << (e & 63);
                        }
                        bits[(low >> 6) as usize] |= 1u64 << (low & 63);
                        *chunk = Chunk::Bitmap(bits);
                    } else {
                        v.insert(pos, low);
                    }
                    true
                }
            },
            Chunk::Bitmap(bits) => {
                let word = &mut bits[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                let fresh = *word & mask == 0;
                *word |= mask;
                fresh
            }
        };
        self.len += inserted as usize;
        inserted
    }

    /// True when `x` is present.
    pub fn contains(&self, x: u32) -> bool {
        let low = x as u16;
        match self.chunks.get(&(x >> 16)) {
            None => false,
            Some(Chunk::Array(v)) => v.binary_search(&low).is_ok(),
            Some(Chunk::Bitmap(bits)) => bits[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
        }
    }

    /// All values in ascending order.
    pub fn sorted(&self) -> Vec<u32> {
        let mut keys: Vec<u32> = self.chunks.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        let mut out = Vec::with_capacity(self.len);
        for key in keys {
            let high = key << 16;
            match self.chunks.get(&key).expect("chunk key just listed") {
                Chunk::Array(v) => out.extend(v.iter().map(|&low| high | low as u32)),
                Chunk::Bitmap(bits) => {
                    for (w, &word) in bits.iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            let bit = word.trailing_zeros();
                            out.push(high | (w as u32) << 6 | bit);
                            word &= word - 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// Drop every value, keeping the chunk table's allocation.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_agrees_with_set_len() {
        let mut s = CompactSet::new();
        for x in (0..10_000u32).step_by(3) {
            s.insert(x);
        }
        let by_chunks: usize = s.chunks.values().map(|c| c.len()).sum();
        assert_eq!(by_chunks, s.len());
    }
}
