//! `bs-fastmap` — compact-key hash containers for the sensor hot path.
//!
//! Every record the pipeline sees funnels through sensor ingestion:
//! one dedup probe on the `(originator, querier)` pair and one
//! per-originator accumulation per accepted record. The std containers
//! the seed used there (`BTreeMap<Ipv4Addr, _>`,
//! `HashMap<(Ipv4Addr, Ipv4Addr), _>` with SipHash,
//! `BTreeSet<Ipv4Addr>`) pay pointer chasing, tuple comparisons, and a
//! DoS-resistant hash the workload does not need — the keys are IPv4
//! addresses that pack losslessly into machine integers. This crate
//! provides the three primitives the fast path is built from, with
//! **zero dependencies** (crates.io is unfetchable in the build
//! environment, so — like `bs-par` and `bs-trace` — everything is
//! hand-rolled on `std`):
//!
//! * [`FastKey`] — the hash: one odd-constant multiply (fibonacci
//!   hashing, the FxHash idea) whose *high* bits index the table, so
//!   sequential keys (adjacent IPv4 addresses, packed address pairs)
//!   scatter instead of clustering;
//! * [`FastMap`] — an open-addressing, linear-probing map specialized
//!   for `u32`/`u64` keys: one flat slot array, tombstone deletion
//!   with slot reuse, power-of-two growth at 7/8 occupancy;
//! * [`CompactSet`] — a `u32` set for querier footprints, chunked by
//!   the high 16 bits: small chunks are sorted `Vec<u16>` arrays,
//!   chunks past 4096 entries promote to 8 KiB bitmaps (the classic
//!   roaring layout), and iteration yields ascending order so
//!   flush-time conversion to `BTreeSet` is a linear append;
//! * [`DenseIdSet`] — a flat bitmap + counter over *dense interned*
//!   ids (AS/country ids from the `bs-sensor` querier metadata plane),
//!   where the id space is contiguous from zero and a roaring layout
//!   would be pure overhead.
//!
//! # What this crate is not
//!
//! Not a general-purpose hash map: keys are integers, hashing is not
//! keyed (an adversary who controls keys can construct collisions —
//! acceptable for a sensor whose keys are addresses it also rate-caps
//! per window), and there is no incremental shrinking. The sensor
//! clears everything at window flush, which resets tables wholesale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod map;
mod set;

pub use dense::DenseIdSet;
pub use map::FastMap;
pub use set::CompactSet;

/// 2^64 / φ, the fibonacci-hashing multiplier: odd, and with the
/// golden-ratio bit pattern that spreads consecutive keys maximally
/// far apart in the high bits.
pub const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

/// An integer key [`FastMap`] can hash with one multiply.
///
/// `mix` must place its entropy in the **high** bits: the map indexes
/// with `mix() >> shift`, not a low-bit mask, which is what makes a
/// bare multiplicative hash safe for sequential keys.
pub trait FastKey: Copy + Eq {
    /// Hash the key. High bits index the table.
    fn mix(self) -> u64;
}

impl FastKey for u32 {
    #[inline]
    fn mix(self) -> u64 {
        (self as u64).wrapping_mul(PHI64)
    }
}

impl FastKey for u64 {
    #[inline]
    fn mix(self) -> u64 {
        // Fold the top half back down first so keys differing only in
        // their high bits (e.g. packed (originator << 32) pairs that
        // share a querier) still change every output bit.
        (self ^ (self >> 32)).wrapping_mul(PHI64)
    }
}
