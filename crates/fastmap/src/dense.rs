//! [`DenseIdSet`] — a flat bitmap set over *dense* interned ids.
//!
//! The querier metadata plane (`bs-sensor::qmeta`) interns AS numbers
//! and country codes into contiguous id spaces `0..n` per window. The
//! per-originator "how many distinct ASes did this footprint touch"
//! unions then never need a comparison-ordered set: a bitmap sized to
//! the interned space plus a live counter answers membership and
//! cardinality in O(1) per insert, with the whole set usually fitting
//! in a cache line or two.

/// A set of dense `u32` ids backed by a flat `u64` bitmap and a
/// maintained cardinality counter.
///
/// Sized up front with [`DenseIdSet::with_capacity`] for the id space
/// in play; inserting an id past the capacity grows the bitmap (so a
/// conservative capacity is a performance hint, not a correctness
/// bound).
#[derive(Debug, Clone, Default)]
pub struct DenseIdSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseIdSet {
    /// An empty set expecting ids in `0..n_ids`.
    pub fn with_capacity(n_ids: usize) -> Self {
        DenseIdSet { words: vec![0; n_ids.div_ceil(64)], len: 0 }
    }

    /// Insert `id`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let word = (id / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (id % 64);
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Is `id` in the set?
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.words.get((id / 64) as usize).is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Number of distinct ids inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id, keeping the allocated bitmap for reuse.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_counts_distinct_ids_once() {
        let mut s = DenseIdSet::with_capacity(100);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(3), "re-insert must report already-present");
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(65));
    }

    #[test]
    fn grows_past_declared_capacity() {
        let mut s = DenseIdSet::with_capacity(1);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(0));
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut s = DenseIdSet::with_capacity(256);
        for id in 0..256 {
            s.insert(id);
        }
        assert_eq!(s.len(), 256);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(17));
        assert!(s.insert(17));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn zero_capacity_is_usable() {
        let mut s = DenseIdSet::with_capacity(0);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert_eq!(s.len(), 1);
    }
}
