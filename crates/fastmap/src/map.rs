//! The open-addressing map.

use crate::FastKey;

/// One slot of the table. `Tombstone` keeps probe chains intact after
/// a removal; inserts reuse the first tombstone they probe past.
#[derive(Clone, Debug)]
enum Slot<K, V> {
    Empty,
    Tombstone,
    Full(K, V),
}

impl<K, V> Slot<K, V> {
    #[inline]
    fn is_empty(&self) -> bool {
        matches!(self, Slot::Empty)
    }
}

/// An open-addressing hash map specialized for integer keys.
///
/// Linear probing over one flat power-of-two slot array; the home slot
/// is the high bits of [`FastKey::mix`], so a single multiply replaces
/// SipHash. Deletion leaves tombstones that later inserts reuse; the
/// table grows (and drops all tombstones) when live entries plus
/// tombstones reach 7/8 of capacity.
///
/// ```
/// use bs_fastmap::FastMap;
/// let mut m: FastMap<u32, &str> = FastMap::new();
/// m.insert(0xC0A8_0001, "192.168.0.1");
/// assert_eq!(m.get(&0xC0A8_0001), Some(&"192.168.0.1"));
/// assert_eq!(m.remove(&0xC0A8_0001), Some("192.168.0.1"));
/// assert!(m.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct FastMap<K, V> {
    slots: Vec<Slot<K, V>>,
    /// Live entries.
    len: usize,
    /// Tombstones (counted toward occupancy so probe chains stay short).
    tombs: usize,
    /// `64 - log2(slots.len())`: the hash's high bits become the index.
    shift: u32,
}

impl<K: FastKey, V> Default for FastMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FastKey, V> FastMap<K, V> {
    /// An empty map; allocates nothing until the first insert.
    pub fn new() -> Self {
        FastMap { slots: Vec::new(), len: 0, tombs: 0, shift: 64 }
    }

    /// An empty map pre-sized for at least `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = Self::new();
        if n > 0 {
            m.rehash(Self::cap_for(n));
        }
        m
    }

    /// Smallest power-of-two capacity that holds `n` live entries
    /// below the 7/8 occupancy bound (minimum 8).
    fn cap_for(n: usize) -> usize {
        let need = n.saturating_mul(8) / 7 + 1;
        need.next_power_of_two().max(8)
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live entries exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn home(&self, k: K) -> usize {
        // shift == 64 would be UB on the raw op; it only occurs while
        // the table is unallocated, and every caller allocates first.
        (k.mix() >> self.shift) as usize
    }

    /// Grow/rehash into `new_cap` slots, dropping tombstones.
    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap > self.len);
        let old = std::mem::take(&mut self.slots);
        self.slots = Vec::new();
        self.slots.resize_with(new_cap, || Slot::Empty);
        self.shift = 64 - new_cap.trailing_zeros();
        self.tombs = 0;
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut i = self.home(k);
                while !self.slots[i].is_empty() {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(k, v);
            }
        }
    }

    /// Make room for one more entry if occupancy would cross 7/8.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if (self.len + self.tombs + 1) * 8 > cap * 7 {
            // Double when genuinely full; same size when tombstones are
            // the problem (rehash-in-place clears them).
            let new_cap =
                if (self.len + 1) * 8 > cap * 4 { Self::cap_for(self.len + 1) } else { cap };
            self.rehash(new_cap.max(8));
        }
    }

    /// Index of `k`'s slot: `Ok(i)` when present at `i`, `Err(i)` with
    /// the insertion slot (first tombstone on the probe path, else the
    /// terminating empty slot) when absent. Requires an allocated table.
    fn probe(&self, k: K) -> Result<usize, usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(k);
        let mut first_tomb: Option<usize> = None;
        loop {
            match &self.slots[i] {
                Slot::Empty => return Err(first_tomb.unwrap_or(i)),
                Slot::Tombstone => {
                    if first_tomb.is_none() {
                        first_tomb = Some(i);
                    }
                }
                Slot::Full(kk, _) => {
                    if *kk == k {
                        return Ok(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert, returning the previous value if the key was present.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        if self.slots.is_empty() {
            self.rehash(8);
        } else {
            self.reserve_one();
        }
        match self.probe(k) {
            Ok(i) => match &mut self.slots[i] {
                Slot::Full(_, old) => Some(std::mem::replace(old, v)),
                _ => unreachable!("probe returned Ok on a non-full slot"),
            },
            Err(i) => {
                if matches!(self.slots[i], Slot::Tombstone) {
                    self.tombs -= 1;
                }
                self.slots[i] = Slot::Full(k, v);
                self.len += 1;
                None
            }
        }
    }

    /// Reference to the value for `k`.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(*k) {
            Ok(i) => match &self.slots[i] {
                Slot::Full(_, v) => Some(v),
                _ => unreachable!("probe returned Ok on a non-full slot"),
            },
            Err(_) => None,
        }
    }

    /// Mutable reference to the value for `k`.
    #[inline]
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(*k) {
            Ok(i) => match &mut self.slots[i] {
                Slot::Full(_, v) => Some(v),
                _ => unreachable!("probe returned Ok on a non-full slot"),
            },
            Err(_) => None,
        }
    }

    /// True when `k` has a live entry.
    #[inline]
    pub fn contains_key(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Remove `k`, leaving a tombstone; returns its value if present.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(*k) {
            Ok(i) => {
                let slot = std::mem::replace(&mut self.slots[i], Slot::Tombstone);
                self.len -= 1;
                self.tombs += 1;
                match slot {
                    Slot::Full(_, v) => Some(v),
                    _ => unreachable!("probe returned Ok on a non-full slot"),
                }
            }
            Err(_) => None,
        }
    }

    /// The value for `k`, inserting `default()` first if absent. The
    /// bool is `true` when the entry was just created — the one probe
    /// answers both "was it new" and "where is it", which is what the
    /// dedup table and probation table need per record.
    pub fn get_or_insert_with(&mut self, k: K, default: impl FnOnce() -> V) -> (&mut V, bool) {
        let (i, inserted) = self.entry_slot(k, default);
        match &mut self.slots[i] {
            Slot::Full(_, v) => (v, inserted),
            _ => unreachable!("entry_slot returned a non-full slot"),
        }
    }

    /// Shared insert path: slot index for `k`, creating it (from
    /// `default`) if absent. Returns `(index, newly_inserted)`.
    fn entry_slot(&mut self, k: K, default: impl FnOnce() -> V) -> (usize, bool) {
        if self.slots.is_empty() {
            self.rehash(8);
        } else {
            self.reserve_one();
        }
        match self.probe(k) {
            Ok(i) => (i, false),
            Err(i) => {
                if matches!(self.slots[i], Slot::Tombstone) {
                    self.tombs -= 1;
                }
                self.slots[i] = Slot::Full(k, default());
                self.len += 1;
                (i, true)
            }
        }
    }

    /// Iterate live entries in table (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(k, v) => Some((*k, v)),
            _ => None,
        })
    }

    /// Iterate live values in table (hash) order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        self.len = 0;
        self.tombs = 0;
    }

    /// Longest probe chain over all live entries — a hash-quality
    /// diagnostic (a clustered table shows long chains). O(capacity).
    pub fn max_probe_length(&self) -> usize {
        let cap = self.slots.len();
        if cap == 0 {
            return 0;
        }
        let mask = cap - 1;
        let mut worst = 0;
        for (i, s) in self.slots.iter().enumerate() {
            if let Slot::Full(k, _) = s {
                let dist = (i.wrapping_sub(self.home(*k))) & mask;
                worst = worst.max(dist + 1);
            }
        }
        worst
    }
}
