//! `bs-fastmap` behavioral coverage: map insert/lookup/remove/iterate,
//! tombstone reuse, growth across resize thresholds, hash quality on
//! sequential IPv4 keys, and the hybrid set's array↔bitmap promotion —
//! each checked against a std reference container where one exists.

use bs_fastmap::{CompactSet, FastKey, FastMap};
use std::collections::{BTreeMap, BTreeSet};

/// Deterministic splitmix64 stream for pseudo-random keys (no `rand`).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn insert_get_remove_roundtrip() {
    let mut m: FastMap<u64, u64> = FastMap::new();
    assert!(m.is_empty());
    assert_eq!(m.get(&1), None);
    assert_eq!(m.remove(&1), None);

    assert_eq!(m.insert(1, 10), None);
    assert_eq!(m.insert(2, 20), None);
    assert_eq!(m.insert(1, 11), Some(10), "reinsert returns the old value");
    assert_eq!(m.len(), 2);
    assert_eq!(m.get(&1), Some(&11));
    *m.get_mut(&2).unwrap() += 1;
    assert_eq!(m.get(&2), Some(&21));

    assert_eq!(m.remove(&1), Some(11));
    assert_eq!(m.len(), 1);
    assert!(!m.contains_key(&1));
    assert!(m.contains_key(&2));
}

#[test]
fn get_or_insert_with_reports_freshness() {
    let mut m: FastMap<u32, u32> = FastMap::new();
    let (v, fresh) = m.get_or_insert_with(9, || 1);
    assert!(fresh);
    *v += 1;
    let (v, fresh) = m.get_or_insert_with(9, || 1);
    assert!(!fresh);
    assert_eq!(*v, 2);
    assert_eq!(m.len(), 1);
}

#[test]
fn agrees_with_btreemap_under_mixed_churn() {
    // Pseudo-random inserts/overwrites/removes over a small key space
    // (forcing collisions of intent, not of hash) must match BTreeMap.
    let mut m: FastMap<u32, u64> = FastMap::new();
    let mut reference: BTreeMap<u32, u64> = BTreeMap::new();
    let mut s = 0xDECAF;
    for step in 0..20_000u64 {
        let k = (splitmix(&mut s) % 512) as u32;
        match splitmix(&mut s) % 3 {
            0 | 1 => {
                assert_eq!(m.insert(k, step), reference.insert(k, step));
            }
            _ => {
                assert_eq!(m.remove(&k), reference.remove(&k));
            }
        }
        assert_eq!(m.len(), reference.len());
    }
    let collected: BTreeMap<u32, u64> = m.iter().map(|(k, &v)| (k, v)).collect();
    assert_eq!(collected, reference, "iteration must cover exactly the live entries");
}

#[test]
fn tombstones_are_reused_without_growth() {
    // Insert/remove cycles over a fixed working set must converge on a
    // stable capacity: tombstone slots get reused (directly or via the
    // same-size cleanup rehash), not accreted forever.
    let mut m: FastMap<u64, u64> = FastMap::with_capacity(64);
    for k in 0..32u64 {
        m.insert(k, k);
    }
    let cap_after_fill = m.capacity();
    for round in 0..10_000u64 {
        let k = 1000 + (round % 32);
        m.insert(k, round);
        m.remove(&k);
    }
    assert_eq!(m.len(), 32);
    assert!(
        m.capacity() <= cap_after_fill * 2,
        "churn at constant size must not grow the table unboundedly \
         (started at {cap_after_fill}, ended at {})",
        m.capacity()
    );
    for k in 0..32u64 {
        assert_eq!(m.get(&k), Some(&k), "live entries must survive churn");
    }
}

#[test]
fn growth_preserves_entries_across_resize_thresholds() {
    // Walk straight through several doublings; every entry must stay
    // reachable after each rehash.
    let mut m: FastMap<u32, u32> = FastMap::new();
    let mut cap = m.capacity();
    let mut resizes = 0;
    for k in 0..10_000u32 {
        m.insert(k, k ^ 0xFFFF);
        if m.capacity() != cap {
            resizes += 1;
            cap = m.capacity();
            // Spot-check across the whole table right after the rehash.
            for probe in (0..=k).step_by(97) {
                assert_eq!(m.get(&probe), Some(&(probe ^ 0xFFFF)));
            }
        }
    }
    assert!(resizes >= 5, "10k inserts from empty must resize repeatedly (saw {resizes})");
    assert_eq!(m.len(), 10_000);
    for k in 0..10_000u32 {
        assert_eq!(m.get(&k), Some(&(k ^ 0xFFFF)));
    }
}

#[test]
fn sequential_ipv4_keys_do_not_cluster() {
    // The hot-path worst case for a multiplicative hash: densely
    // sequential keys. A /16 scan's addresses and the corresponding
    // packed (originator, querier) pairs must both probe in O(1)-ish
    // chains, not degrade toward linear scans.
    let base = u32::from(std::net::Ipv4Addr::new(192, 168, 0, 0));
    let mut by_ip: FastMap<u32, ()> = FastMap::new();
    for i in 0..65_536u32 {
        by_ip.insert(base + i, ());
    }
    let worst = by_ip.max_probe_length();
    assert!(worst <= 16, "sequential u32 keys clustered: max probe chain {worst}");

    let orig = u64::from(u32::from(std::net::Ipv4Addr::new(203, 0, 113, 9))) << 32;
    let mut by_pair: FastMap<u64, ()> = FastMap::new();
    for i in 0..65_536u64 {
        by_pair.insert(orig | (base as u64 + i), ());
    }
    let worst = by_pair.max_probe_length();
    assert!(worst <= 16, "sequential packed-pair keys clustered: max probe chain {worst}");
}

#[test]
fn hash_mix_is_injective_on_samples() {
    // mix() is a bijection composed with a shift at lookup time; two
    // distinct keys must never produce identical full hashes.
    let mut keys: BTreeSet<u64> = (0..50_000u64).collect();
    let mut s = 7u64;
    for _ in 0..50_000 {
        keys.insert(splitmix(&mut s));
    }
    let mixed: BTreeSet<u64> = keys.iter().map(|k| k.mix()).collect();
    assert_eq!(mixed.len(), keys.len(), "mix() collided on distinct keys");
}

#[test]
fn clear_retains_capacity_and_empties() {
    let mut m: FastMap<u32, u32> = FastMap::new();
    for k in 0..1000 {
        m.insert(k, k);
    }
    let cap = m.capacity();
    m.clear();
    assert!(m.is_empty());
    assert_eq!(m.capacity(), cap);
    assert_eq!(m.get(&1), None);
    m.insert(1, 2);
    assert_eq!(m.get(&1), Some(&2));
}

#[test]
fn compact_set_matches_btreeset_across_promotion() {
    // Drive one chunk straight through the array→bitmap promotion
    // threshold and keep other chunks sparse; contents and sorted
    // iteration must match a BTreeSet at every scale.
    let mut s = CompactSet::new();
    let mut reference = BTreeSet::new();
    let mut state = 42u64;
    for i in 0..6_000u32 {
        // Dense chunk: everything under 0x0001_0000.
        let dense = i * 7 % 60_000;
        assert_eq!(s.insert(dense), reference.insert(dense));
        // Sparse chunks: spread across the whole u32 space.
        let sparse = splitmix(&mut state) as u32 | 0x0002_0000;
        assert_eq!(s.insert(sparse), reference.insert(sparse));
    }
    assert_eq!(s.len(), reference.len());
    let sorted = s.sorted();
    assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted() must be strictly ascending");
    assert_eq!(sorted, reference.iter().copied().collect::<Vec<u32>>());
    for probe in [0u32, 1, 59_999, 60_000, 0x0002_0001, u32::MAX] {
        assert_eq!(s.contains(probe), reference.contains(&probe), "probe {probe}");
    }
    s.clear();
    assert!(s.is_empty());
    assert!(s.sorted().is_empty());
    assert!(s.insert(3));
}

#[test]
fn compact_set_chunk_boundaries() {
    let mut s = CompactSet::new();
    for x in [0u32, 0xFFFF, 0x1_0000, 0x1_FFFF, u32::MAX - 1, u32::MAX] {
        assert!(s.insert(x));
        assert!(s.contains(x));
    }
    assert_eq!(s.sorted(), vec![0, 0xFFFF, 0x1_0000, 0x1_FFFF, u32::MAX - 1, u32::MAX]);
}
