//! The twelve application classes of paper §III-D.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An originator's application class: what kind of network-wide activity
/// it carries out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ApplicationClass {
    /// Web-bug/advertising trackers.
    AdTracker,
    /// Content-delivery network edges.
    Cdn,
    /// Cloud-service front ends.
    Cloud,
    /// Web crawlers.
    Crawler,
    /// Large DNS servers.
    Dns,
    /// Legitimate bulk mail (mailing lists, webmail).
    Mail,
    /// Large NTP servers.
    Ntp,
    /// Peer-to-peer file-sharing participants.
    P2p,
    /// Mobile push-notification services.
    Push,
    /// Internet scanners (ICMP/TCP/UDP).
    Scan,
    /// Spam sources.
    Spam,
    /// Software-update distribution servers.
    Update,
}

impl ApplicationClass {
    /// All twelve classes, in the paper's alphabetical table order.
    pub const ALL: [ApplicationClass; 12] = [
        ApplicationClass::AdTracker,
        ApplicationClass::Cdn,
        ApplicationClass::Cloud,
        ApplicationClass::Crawler,
        ApplicationClass::Dns,
        ApplicationClass::Mail,
        ApplicationClass::Ntp,
        ApplicationClass::P2p,
        ApplicationClass::Push,
        ApplicationClass::Scan,
        ApplicationClass::Spam,
        ApplicationClass::Update,
    ];

    /// Stable index in `0..12`, used as the ML label.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("class in ALL")
    }

    /// Inverse of [`ApplicationClass::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// Short lowercase name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ApplicationClass::AdTracker => "ad-tracker",
            ApplicationClass::Cdn => "cdn",
            ApplicationClass::Cloud => "cloud",
            ApplicationClass::Crawler => "crawler",
            ApplicationClass::Dns => "dns",
            ApplicationClass::Mail => "mail",
            ApplicationClass::Ntp => "ntp",
            ApplicationClass::P2p => "p2p",
            ApplicationClass::Push => "push",
            ApplicationClass::Scan => "scan",
            ApplicationClass::Spam => "spam",
            ApplicationClass::Update => "update",
        }
    }

    /// The paper's malicious classes, whose populations churn an order
    /// of magnitude faster than the benign ones (§V-A).
    pub fn is_malicious(self) -> bool {
        matches!(self, ApplicationClass::Scan | ApplicationClass::Spam)
    }

    /// All class names, for ML dataset schemas.
    pub fn all_names() -> Vec<String> {
        Self::ALL.iter().map(|c| c.name().to_string()).collect()
    }
}

impl fmt::Display for ApplicationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ApplicationClass {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .iter()
            .find(|c| c.name() == s)
            .copied()
            .ok_or_else(|| format!("unknown application class {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, c) in ApplicationClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ApplicationClass::from_index(i), Some(*c));
        }
        assert_eq!(ApplicationClass::from_index(12), None);
    }

    #[test]
    fn names_round_trip() {
        for c in ApplicationClass::ALL {
            assert_eq!(c.name().parse::<ApplicationClass>().unwrap(), c);
        }
        assert!("banana".parse::<ApplicationClass>().is_err());
    }

    #[test]
    fn exactly_two_malicious_classes() {
        let n = ApplicationClass::ALL.iter().filter(|c| c.is_malicious()).count();
        assert_eq!(n, 2);
        assert!(ApplicationClass::Scan.is_malicious());
        assert!(ApplicationClass::Spam.is_malicious());
        assert!(!ApplicationClass::Mail.is_malicious());
    }

    #[test]
    fn twelve_distinct_names() {
        use std::collections::HashSet;
        let names: HashSet<_> = ApplicationClass::all_names().into_iter().collect();
        assert_eq!(names.len(), 12);
    }
}
