//! Scenarios: originator populations evolving over time.
//!
//! A scenario owns a set of population *slots* per application class.
//! Each slot hosts a chain of *incarnations*: an originator is born,
//! stays active for a class-dependent lifetime, and is replaced by a
//! fresh originator at a new address. Stationary populations with
//! class-dependent turnover reproduce the paper's churn findings:
//! benign examples persist for many months while spam and scanning
//! addresses rotate within weeks (Figs. 5, 6, 15), and week-over-week
//! scanner populations show a stable core plus ~20 % turnover.
//!
//! Scenario events overlay bursts — extra short-lived scanners after a
//! vulnerability disclosure — reproducing the Heartbleed bump of
//! Fig. 11.

use crate::behavior::{lifetime_days, make_profile};
use crate::class::ApplicationClass;
use crate::pools::TargetPools;
use crate::profile::OriginatorProfile;
use bs_dns::{SimDuration, SimTime};
use bs_netsim::det::{hash3, mix64, unit_f64};
use bs_netsim::types::{Contact, ContactKind, CountryCode};
use bs_netsim::world::World;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A scheduled overlay on the base population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// A burst of extra scanners (e.g. Heartbleed: TCP 443 scanning
    /// spikes days after disclosure).
    ScanSurge {
        /// Burst start.
        start: SimTime,
        /// Burst length.
        duration: SimDuration,
        /// How many extra scanners join.
        extra_scanners: usize,
        /// The port they all probe.
        port: u16,
    },
}

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario seed (independent of the world seed).
    pub seed: u64,
    /// Total modeled span.
    pub duration: SimDuration,
    /// Concurrent population per class (slots).
    pub slots: BTreeMap<ApplicationClass, usize>,
    /// Multiplier on every originator's daily footprint; long scenarios
    /// scale down to keep simulation affordable.
    pub rate_scale: f64,
    /// `Some((country, fraction))` places that fraction of originators
    /// inside the country (used to populate JP-observable space).
    pub region: Option<(CountryCode, f64)>,
    /// Scanner teams: `(team_count, team_size)` — groups of scan slots
    /// sharing one /24, churning together (§VI-B's "teams of scanners").
    pub scan_teams: (usize, usize),
    /// Overlaid events.
    pub events: Vec<ScenarioEvent>,
    /// Size of each target pool.
    pub pool_size: usize,
}

impl ScenarioConfig {
    /// A small, balanced population suitable for tests and quickstarts.
    pub fn small(seed: u64, duration: SimDuration) -> Self {
        let mut slots = BTreeMap::new();
        for c in ApplicationClass::ALL {
            slots.insert(c, 4);
        }
        slots.insert(ApplicationClass::Scan, 10);
        slots.insert(ApplicationClass::Spam, 10);
        ScenarioConfig {
            seed,
            duration,
            slots,
            rate_scale: 1.0,
            region: None,
            scan_teams: (1, 4),
            events: Vec::new(),
            pool_size: 2_000,
        }
    }
}

/// A fully instantiated scenario: all originator profiles over the
/// configured span, plus the shared target pools.
pub struct Scenario {
    config: ScenarioConfig,
    pools: TargetPools,
    profiles: Vec<OriginatorProfile>,
}

impl Scenario {
    /// Instantiate every incarnation of every slot (plus event
    /// overlays), and build the target pools.
    pub fn new(world: &World, config: ScenarioConfig) -> Self {
        let pools = TargetPools::build_all(world, config.pool_size, config.seed ^ 0x9001);
        let horizon_days = (config.duration.secs() as f64 / 86_400.0).ceil();
        let mut profiles = Vec::new();

        for (&class, &n_slots) in &config.slots {
            let (team_count, team_size) =
                if class == ApplicationClass::Scan { config.scan_teams } else { (0, 0) };
            for slot in 0..n_slots as u64 {
                // Team membership: the first team_count*team_size scan
                // slots belong to teams; members share a /24 and a
                // lifetime seed so they churn together.
                let team = if (slot as usize) < team_count * team_size && team_size > 0 {
                    Some(slot as usize / team_size)
                } else {
                    None
                };
                let team_block = team.map(|t| {
                    let h = hash3(config.seed ^ 0x7EA2, class.index() as u64, t as u64, 1);
                    let region = region_for(&config, h);
                    crate::behavior::originator_addr(world, class, h, region, None)
                });
                let slot_region_h = hash3(config.seed ^ 0x4E61, class.index() as u64, slot, 2);
                let region = region_for(&config, slot_region_h);

                // Walk the incarnation chain.
                let mut k = 0u64;
                // Lifetime seed: per team when in a team (synchronized
                // churn), else per slot.
                let life_key = |k: u64| match team {
                    Some(t) => hash3(
                        config.seed ^ 0x11FE,
                        class.index() as u64 ^ 0x8000,
                        (t as u64) << 20 | k,
                        3,
                    ),
                    None => hash3(config.seed ^ 0x11FE, class.index() as u64, slot << 20 | k, 3),
                };
                let l0 = lifetime_days(class, life_key(0));
                // Stationary start: incarnation 0 began before time zero.
                let mut birth = -unit_f64(mix64(life_key(0) ^ 0xB117)) * l0;
                let mut life = l0;
                while birth < horizon_days {
                    let from_day = birth.max(0.0);
                    let until_day = (birth + life).min(horizon_days);
                    if until_day > from_day {
                        let active_from = SimTime((from_day * 86_400.0) as u64);
                        let active_until = SimTime((until_day * 86_400.0) as u64);
                        profiles.push(make_profile(
                            world,
                            config.seed,
                            class,
                            slot,
                            k,
                            active_from,
                            active_until,
                            config.rate_scale,
                            region,
                            team_block,
                        ));
                    }
                    birth += life;
                    k += 1;
                    life = lifetime_days(class, life_key(k));
                }
            }
        }

        // Event overlays.
        for (ei, ev) in config.events.iter().enumerate() {
            match ev {
                ScenarioEvent::ScanSurge { start, duration, extra_scanners, port } => {
                    for s in 0..*extra_scanners as u64 {
                        let mut p = make_profile(
                            world,
                            config.seed ^ hash3(0x5u64, ei as u64, s, 4),
                            ApplicationClass::Scan,
                            1_000_000 + s,
                            ei as u64,
                            *start,
                            *start + *duration,
                            config.rate_scale,
                            region_for(&config, hash3(config.seed, ei as u64, s, 6)),
                            None,
                        );
                        p.kinds = vec![ContactKind::ProbeTcp(*port)];
                        profiles.push(p);
                    }
                }
            }
        }

        Scenario { config, pools, profiles }
    }

    /// The configuration this scenario was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Every originator incarnation over the whole span.
    pub fn profiles(&self) -> &[OriginatorProfile] {
        &self.profiles
    }

    /// The shared target pools.
    pub fn pools(&self) -> &TargetPools {
        &self.pools
    }

    /// Originators active at any point of `[from, until)`, with their
    /// ground-truth classes.
    pub fn active_originators(
        &self,
        from: SimTime,
        until: SimTime,
    ) -> Vec<(Ipv4Addr, ApplicationClass)> {
        self.profiles
            .iter()
            .filter(|p| p.overlaps(from, until))
            .map(|p| (p.originator, p.class))
            .collect()
    }

    /// All contacts inside `[from, until)`, sorted by time. Generate in
    /// day-sized windows to bound memory on long scenarios.
    pub fn contacts_window(&self, world: &World, from: SimTime, until: SimTime) -> Vec<Contact> {
        let mut out = Vec::new();
        for p in &self.profiles {
            p.contacts_into(world, &self.pools, from, until, &mut out);
        }
        out.sort_by_key(|c| (c.time, u32::from(c.originator), u32::from(c.target)));
        bs_telemetry::counter_add("activity.contacts", out.len() as u64);
        out
    }
}

fn region_for(config: &ScenarioConfig, h: u64) -> Option<CountryCode> {
    match config.region {
        Some((cc, frac)) if unit_f64(h) < frac => Some(cc),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_netsim::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    fn short_config(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::small(seed, SimDuration::from_days(2));
        c.pool_size = 500;
        c
    }

    #[test]
    fn population_is_stationary_at_start() {
        let w = world();
        let s = Scenario::new(&w, short_config(1));
        let active = s.active_originators(SimTime::ZERO, SimTime::from_days(1));
        // Every slot should have exactly one (or, at a churn boundary,
        // two) active incarnations on day one.
        let total_slots: usize = s.config().slots.values().sum();
        assert!(active.len() >= total_slots, "{} < {total_slots}", active.len());
        assert!(active.len() <= total_slots * 2 + 4);
    }

    #[test]
    fn incarnations_of_a_slot_never_overlap() {
        let w = world();
        let mut cfg = short_config(2);
        cfg.duration = SimDuration::from_days(400);
        let s = Scenario::new(&w, cfg);
        // Spam churns fast: its slots must show several incarnations
        // with disjoint, gap-free windows.
        let mut spam: Vec<&OriginatorProfile> =
            s.profiles().iter().filter(|p| p.class == ApplicationClass::Spam).collect();
        assert!(spam.len() > 30, "spam incarnations {}", spam.len());
        spam.sort_by_key(|p| (p.seed, p.active_from));
        // Windows clipped to horizon are monotone in each slot; check by
        // grouping on originator-independent slot identity via times:
        // overlapping same-slot incarnations would duplicate contacts.
        // Instead verify global invariant: every window is non-empty and
        // within horizon.
        for p in &spam {
            assert!(p.active_from < p.active_until);
            assert!(p.active_until <= SimTime::from_days(400));
        }
    }

    #[test]
    fn malicious_turnover_exceeds_benign() {
        let w = world();
        let mut cfg = short_config(3);
        cfg.duration = SimDuration::from_days(300);
        let s = Scenario::new(&w, cfg);
        let count = |class: ApplicationClass| {
            s.profiles().iter().filter(|p| p.class == class).count() as f64
                / s.config().slots[&class] as f64
        };
        let spam_turnover = count(ApplicationClass::Spam);
        let mail_turnover = count(ApplicationClass::Mail);
        assert!(
            spam_turnover > mail_turnover * 2.0,
            "spam {spam_turnover} vs mail {mail_turnover}"
        );
    }

    #[test]
    fn scan_teams_share_slash24() {
        let w = world();
        let mut cfg = short_config(4);
        cfg.scan_teams = (2, 4);
        let s = Scenario::new(&w, cfg);
        use std::collections::HashMap;
        let mut by_block: HashMap<u32, usize> = HashMap::new();
        for p in s.profiles().iter().filter(|p| p.class == ApplicationClass::Scan) {
            *by_block.entry(u32::from(p.originator) & 0xFFFF_FF00).or_default() += 1;
        }
        let teams = by_block.values().filter(|n| **n >= 4).count();
        assert!(teams >= 2, "expected ≥2 blocks with ≥4 scanners: {by_block:?}");
    }

    #[test]
    fn scan_surge_adds_port_scanners_in_window() {
        let w = world();
        let mut cfg = short_config(5);
        cfg.duration = SimDuration::from_days(30);
        cfg.events.push(ScenarioEvent::ScanSurge {
            start: SimTime::from_days(10),
            duration: SimDuration::from_days(5),
            extra_scanners: 12,
            port: 443,
        });
        let s = Scenario::new(&w, cfg);
        let surge: Vec<_> = s
            .profiles()
            .iter()
            .filter(|p| {
                p.kinds == vec![ContactKind::ProbeTcp(443)]
                    && p.active_from == SimTime::from_days(10)
            })
            .collect();
        assert_eq!(surge.len(), 12);
        for p in surge {
            assert_eq!(p.active_until, SimTime::from_days(15));
        }
    }

    #[test]
    fn contacts_are_sorted_and_deterministic() {
        let w = world();
        let s = Scenario::new(&w, short_config(6));
        let a = s.contacts_window(&w, SimTime::ZERO, SimTime::from_hours(6));
        let b = s.contacts_window(&w, SimTime::ZERO, SimTime::from_hours(6));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time), "sorted by time");
    }

    #[test]
    fn regional_scenario_places_originators_in_country() {
        let w = world();
        let jp = CountryCode::new("jp").unwrap();
        let mut cfg = short_config(7);
        cfg.region = Some((jp, 0.8));
        let s = Scenario::new(&w, cfg);
        let total = s.profiles().len();
        let in_jp = s.profiles().iter().filter(|p| w.country_of(p.originator) == Some(jp)).count();
        let frac = in_jp as f64 / total as f64;
        assert!(frac > 0.6, "jp fraction {frac}");
    }
}
