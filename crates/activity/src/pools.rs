//! Target pools: pre-sampled sets of addresses each activity aims at.
//!
//! Scanners walk the raw address space, but most classes touch
//! *populations*: spam goes to mail servers, CDN traffic to residential
//! eyeballs, crawlers to web servers. Pools are sampled once per
//! scenario from the (procedural) world and reused by every originator,
//! with a per-country index so regionally-focused originators (a
//! Japanese mailing list, a CDN edge serving Asia) can draw most of
//! their targets from home.

use bs_netsim::det::{bounded, hash2, hash3, mix64};
use bs_netsim::types::{CountryCode, HostRole};
use bs_netsim::world::{BlockProfile, World};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The kinds of pools activities draw targets from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Live mail servers and anti-spam appliances (spam, mailing lists).
    MailServers,
    /// Live residential hosts (CDN, ad trackers, push, update, P2P).
    Eyeballs,
    /// Live web servers (crawlers).
    WebServers,
    /// Live name servers (DNS service traffic).
    NameServers,
    /// Live NTP servers.
    NtpServers,
    /// Any live host (cloud applications and general service traffic).
    AnyLive,
}

impl PoolKind {
    /// All pool kinds.
    pub const ALL: [PoolKind; 6] = [
        PoolKind::MailServers,
        PoolKind::Eyeballs,
        PoolKind::WebServers,
        PoolKind::NameServers,
        PoolKind::NtpServers,
        PoolKind::AnyLive,
    ];

    fn accepts(self, world: &World, addr: Ipv4Addr) -> bool {
        let Some(role) = world.host_role(addr) else {
            return false;
        };
        match self {
            PoolKind::MailServers => {
                matches!(role, HostRole::MailServer | HostRole::AntiSpam)
            }
            PoolKind::Eyeballs => role == HostRole::Home,
            PoolKind::WebServers => role == HostRole::WebServer,
            PoolKind::NameServers => role == HostRole::NameServer,
            PoolKind::NtpServers => role == HostRole::NtpServer,
            PoolKind::AnyLive => true,
        }
    }

    /// Block profiles worth scanning for this pool (skips blocks that
    /// cannot contain matching hosts, which makes building fast).
    fn promising(self, profile: BlockProfile) -> bool {
        use BlockProfile::*;
        match self {
            PoolKind::MailServers => {
                matches!(profile, Hosting | Enterprise | Academic | IspInfra)
            }
            PoolKind::Eyeballs => profile == Residential,
            PoolKind::WebServers => matches!(profile, Hosting | Enterprise | Academic),
            PoolKind::NameServers => {
                matches!(profile, Hosting | Enterprise | Academic | IspInfra)
            }
            PoolKind::NtpServers => matches!(profile, Academic | IspInfra),
            PoolKind::AnyLive => profile != Unused,
        }
    }
}

/// A sampled pool of target addresses with a per-country index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetPool {
    kind: PoolKind,
    addrs: Vec<Ipv4Addr>,
    by_country: HashMap<CountryCode, Vec<u32>>,
}

impl TargetPool {
    /// Sample a pool of roughly `target_size` matching hosts.
    ///
    /// Sampling walks random /24 blocks, skips unpromising profiles, and
    /// sweeps the rest — orders of magnitude faster than rejection
    /// sampling individual addresses for sparse roles.
    pub fn build(world: &World, kind: PoolKind, target_size: usize, seed: u64) -> Self {
        let mut addrs = Vec::with_capacity(target_size);
        let mut by_country: HashMap<CountryCode, Vec<u32>> = HashMap::new();
        let mut block_i = 0u64;
        // Bound the walk so degenerate configs terminate.
        let max_blocks = (target_size as u64).saturating_mul(400).max(100_000);
        while addrs.len() < target_size && block_i < max_blocks {
            let h = hash3(seed ^ 0x9001_0001, kind_tag(kind), block_i, 3);
            block_i += 1;
            let base = world.random_public_addr(h);
            let block = u32::from(base) & 0xFFFF_FF00;
            if !kind.promising(world.block_profile(base)) {
                continue;
            }
            for low in 0..=255u32 {
                let addr = Ipv4Addr::from(block | low);
                if kind.accepts(world, addr) {
                    if let Some(cc) = world.country_of(addr) {
                        by_country.entry(cc).or_default().push(addrs.len() as u32);
                    }
                    addrs.push(addr);
                    if addrs.len() >= target_size {
                        break;
                    }
                }
            }
        }
        TargetPool { kind, addrs, by_country }
    }

    /// The pool's kind.
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Number of addresses in the pool.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when sampling found nothing.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Countries with at least one pooled address.
    pub fn countries(&self) -> impl Iterator<Item = CountryCode> + '_ {
        self.by_country.keys().copied()
    }

    /// Pick a target by hash; with `focus = Some((country, share))`, the
    /// pick comes from that country with probability `share` (falling
    /// back to the global pool when the country has no addresses).
    pub fn pick(&self, h: u64, focus: Option<(CountryCode, f64)>) -> Option<Ipv4Addr> {
        if self.addrs.is_empty() {
            return None;
        }
        if let Some((cc, share)) = focus {
            if bs_netsim::det::unit_f64(h) < share {
                if let Some(local) = self.by_country.get(&cc) {
                    if !local.is_empty() {
                        let idx = local[bounded(mix64(h ^ 0x10CA1), local.len() as u64) as usize];
                        return Some(self.addrs[idx as usize]);
                    }
                }
            }
        }
        Some(self.addrs[bounded(mix64(h ^ 0x6710B41), self.addrs.len() as u64) as usize])
    }
}

fn kind_tag(kind: PoolKind) -> u64 {
    PoolKind::ALL.iter().position(|k| *k == kind).expect("kind in ALL") as u64
}

/// All pools for one scenario, built lazily per kind.
#[derive(Debug, Clone, Default)]
pub struct TargetPools {
    pools: HashMap<PoolKind, TargetPool>,
}

impl TargetPools {
    /// Build every pool kind up front.
    pub fn build_all(world: &World, size_per_pool: usize, seed: u64) -> Self {
        let pools = PoolKind::ALL
            .iter()
            .map(|k| {
                (*k, TargetPool::build(world, *k, size_per_pool, hash2(seed, kind_tag(*k), 1)))
            })
            .collect();
        TargetPools { pools }
    }

    /// Access one pool.
    pub fn get(&self, kind: PoolKind) -> &TargetPool {
        self.pools.get(&kind).expect("pools built for all kinds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_netsim::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn mail_pool_contains_only_mail_infrastructure() {
        let w = world();
        let p = TargetPool::build(&w, PoolKind::MailServers, 300, 1);
        assert!(p.len() >= 200, "pool size {}", p.len());
        for i in 0..p.len().min(100) {
            let addr = p.addrs[i];
            let role = w.host_role(addr).expect("pooled hosts exist");
            assert!(
                matches!(role, HostRole::MailServer | HostRole::AntiSpam),
                "{addr} has role {role:?}"
            );
        }
    }

    #[test]
    fn eyeball_pool_is_homes() {
        let w = world();
        let p = TargetPool::build(&w, PoolKind::Eyeballs, 300, 2);
        assert!(p.len() >= 200);
        for addr in p.addrs.iter().take(100) {
            assert_eq!(w.host_role(*addr), Some(HostRole::Home));
        }
    }

    #[test]
    fn pools_are_deterministic() {
        let w = world();
        let a = TargetPool::build(&w, PoolKind::WebServers, 100, 7);
        let b = TargetPool::build(&w, PoolKind::WebServers, 100, 7);
        assert_eq!(a.addrs, b.addrs);
        let c = TargetPool::build(&w, PoolKind::WebServers, 100, 8);
        assert_ne!(a.addrs, c.addrs);
    }

    #[test]
    fn regional_focus_biases_picks() {
        let w = world();
        let p = TargetPool::build(&w, PoolKind::Eyeballs, 2000, 3);
        let jp = CountryCode::new("jp").unwrap();
        if !p.by_country.contains_key(&jp) {
            // World layout guarantees JP space; the pool should find it.
            panic!("eyeball pool found no JP homes");
        }
        let mut jp_hits = 0;
        let n = 2000;
        for i in 0..n {
            let addr = p.pick(mix64(i), Some((jp, 0.9))).unwrap();
            if w.country_of(addr) == Some(jp) {
                jp_hits += 1;
            }
        }
        let frac = jp_hits as f64 / n as f64;
        assert!(frac > 0.75, "jp fraction {frac}");
        // Unfocused picks hit JP far less.
        let mut base_hits = 0;
        for i in 0..n {
            let addr = p.pick(mix64(i + 10_000), None).unwrap();
            if w.country_of(addr) == Some(jp) {
                base_hits += 1;
            }
        }
        assert!(base_hits * 2 < jp_hits, "base={base_hits} focused={jp_hits}");
    }

    #[test]
    fn empty_pool_pick_is_none() {
        let p = TargetPool {
            kind: PoolKind::NtpServers,
            addrs: Vec::new(),
            by_country: HashMap::new(),
        };
        assert_eq!(p.pick(1, None), None);
        assert!(p.is_empty());
    }

    #[test]
    fn build_all_covers_every_kind() {
        let w = world();
        let pools = TargetPools::build_all(&w, 50, 9);
        for k in PoolKind::ALL {
            assert!(!pools.get(k).is_empty(), "{k:?} pool empty");
        }
    }
}
