//! Generative models of network-wide activity.
//!
//! The paper classifies originators into twelve application classes
//! (§III-D) — spammers, scanners, CDNs, mailing lists, crawlers, and so
//! on. To evaluate a classifier without the proprietary traces, this
//! crate plays the other side: it *generates* originators of each class
//! with the behaviours the paper describes, and turns them into a
//! time-ordered stream of [`bs_netsim::Contact`]s for the simulator.
//!
//! What varies by class (see [`behavior`]):
//!
//! * **what they send** — SMTP, TCP/UDP/ICMP probes, fetches, or
//!   target-initiated service traffic;
//! * **whom they touch** — uniform address-space walks for scanners,
//!   mail-server pools for spam, residential eyeballs for CDNs and ad
//!   trackers, with per-originator geographic concentration;
//! * **how hard** — heavy-tailed daily footprints (bounded Pareto),
//!   giving the Fig. 9 distributions;
//! * **when** — diurnal modulation for human-driven classes, flat
//!   automation for ssh scanning and spam (Fig. 16);
//! * **for how long** — class-dependent lifetimes and replacement
//!   (churn), fast for malicious classes and slow for benign ones
//!   (Figs. 5, 6, 15).
//!
//! Everything derives deterministically from a scenario seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod class;
pub mod pools;
pub mod profile;
pub mod scenario;

pub use class::ApplicationClass;
pub use pools::{PoolKind, TargetPool, TargetPools};
pub use profile::{DiurnalPattern, OriginatorProfile, Targeting};
pub use scenario::{Scenario, ScenarioConfig, ScenarioEvent};
