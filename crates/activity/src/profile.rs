//! Originator profiles: everything one originator does, and the
//! machinery that turns a profile into contacts.

use crate::class::ApplicationClass;
use crate::pools::{PoolKind, TargetPools};
use bs_dns::{SimDuration, SimTime};
use bs_netsim::det::{bounded, hash3, mix64, unit_f64};
use bs_netsim::types::{Contact, ContactKind, CountryCode};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// How an originator selects targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Targeting {
    /// Uniform random walk over public address space (scanners).
    UniformRandom,
    /// Draw from a pool, optionally concentrated in one country.
    Pool {
        /// Which pool.
        kind: PoolKind,
        /// `Some((country, share))` sends `share` of contacts there.
        focus: Option<(CountryCode, f64)>,
    },
}

/// Time-of-day modulation of activity (paper Fig. 16: CDN, ad and mail
/// traffic is strongly diurnal; ssh scanning and spam are flat).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    /// Amplitude in `[0, 1]`: 0 = flat, 1 = full swing.
    pub amplitude: f64,
    /// Hour of peak activity in `[0, 24)`.
    pub peak_hour: f64,
}

impl DiurnalPattern {
    /// A flat (fully automated) pattern.
    pub fn flat() -> Self {
        DiurnalPattern { amplitude: 0.0, peak_hour: 12.0 }
    }

    /// Relative intensity at a time of day, mean 1.0 over a day.
    pub fn intensity(&self, t: SimTime) -> f64 {
        let hour = t.second_of_day() as f64 / 3600.0;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        (1.0 + self.amplitude * phase.cos()).max(0.0)
    }
}

/// One originator's complete behaviour description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginatorProfile {
    /// The single source address (paper: "an originator is a single IP
    /// address that touches many targets").
    pub originator: Ipv4Addr,
    /// Ground-truth application class.
    pub class: ApplicationClass,
    /// Distinct targets touched per active day.
    pub targets_per_day: f64,
    /// Mean contacts per chosen target (spam retries, repeated CDN
    /// deliveries); drives the queries-per-querier feature.
    pub repeat_mean: f64,
    /// Traffic kind(s); contacts cycle through this list.
    pub kinds: Vec<ContactKind>,
    /// Target-selection strategy.
    pub targeting: Targeting,
    /// Time-of-day modulation.
    pub diurnal: DiurnalPattern,
    /// First instant of activity.
    pub active_from: SimTime,
    /// End of activity (exclusive).
    pub active_until: SimTime,
    /// Per-originator randomness root.
    pub seed: u64,
}

impl OriginatorProfile {
    /// Is the originator active at any point inside `[from, until)`?
    pub fn overlaps(&self, from: SimTime, until: SimTime) -> bool {
        self.active_from < until && from < self.active_until
    }

    /// Generate this originator's contacts inside `[from, until)`,
    /// appending to `out` (unsorted; callers sort the merged stream).
    ///
    /// Target choice is stable per (originator, target-slot): slot `j`
    /// of day `d` maps to a deterministic address, and each chosen
    /// target receives `~repeat_mean` contacts spread over the day.
    /// Scanners draw fresh random addresses per slot instead — a scan
    /// does not revisit.
    pub fn contacts_into(
        &self,
        world: &bs_netsim::world::World,
        pools: &TargetPools,
        from: SimTime,
        until: SimTime,
        out: &mut Vec<Contact>,
    ) {
        if !self.overlaps(from, until) || self.targets_per_day <= 0.0 {
            return;
        }
        let start = self.active_from.max(from);
        let end = self.active_until.min(until);
        let first_day = start.day();
        let last_day = if end.secs() == 0 { 0 } else { (end.secs() - 1) / 86_400 };
        for day in first_day..=last_day {
            let day_start = SimTime::from_days(day);
            let day_seed = hash3(self.seed, day, 0xDA7, 1);
            // Integer target count with stochastic rounding.
            let n_f = self.targets_per_day;
            let mut n = n_f.floor() as u64;
            if unit_f64(day_seed) < n_f.fract() {
                n += 1;
            }
            for j in 0..n {
                let slot = hash3(self.seed, day, j, 5);
                let Some(target) = self.pick_target(world, pools, slot) else {
                    continue;
                };
                // Repeats: geometric-ish around repeat_mean.
                let mut repeats = 1u64;
                if self.repeat_mean > 1.0 {
                    let extra = self.repeat_mean - 1.0;
                    let mut h = mix64(slot ^ 0x4EF);
                    while unit_f64(h) < extra / (1.0 + extra) && repeats < 12 {
                        repeats += 1;
                        h = mix64(h);
                    }
                }
                let kind = self.kinds[(j % self.kinds.len() as u64) as usize];
                for r in 0..repeats {
                    let t = day_start + SimDuration(self.diurnal_second(slot, r));
                    if t >= start && t < end {
                        out.push(Contact { time: t, originator: self.originator, target, kind });
                    }
                }
            }
        }
    }

    fn pick_target(
        &self,
        world: &bs_netsim::world::World,
        pools: &TargetPools,
        slot: u64,
    ) -> Option<Ipv4Addr> {
        match self.targeting {
            Targeting::UniformRandom => Some(world.random_public_addr(slot)),
            Targeting::Pool { kind, focus } => pools.get(kind).pick(slot, focus),
        }
    }

    /// Pick a second-of-day for contact `r` of a slot, biased by the
    /// diurnal pattern via rejection sampling (bounded attempts).
    fn diurnal_second(&self, slot: u64, r: u64) -> u64 {
        let mut h = hash3(self.seed ^ 0x71AE, slot, r, 9);
        if self.diurnal.amplitude <= 0.0 {
            return bounded(h, 86_400);
        }
        let peak = 1.0 + self.diurnal.amplitude;
        for _ in 0..16 {
            let sec = bounded(h, 86_400);
            let accept = self.diurnal.intensity(SimTime(sec)) / peak;
            if unit_f64(mix64(h ^ 0xACC)) < accept {
                return sec;
            }
            h = mix64(h);
        }
        bounded(h, 86_400)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_netsim::world::{World, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    fn scanner(world: &World) -> OriginatorProfile {
        OriginatorProfile {
            originator: world.random_public_addr(42),
            class: ApplicationClass::Scan,
            targets_per_day: 500.0,
            repeat_mean: 1.0,
            kinds: vec![ContactKind::ProbeTcp(22)],
            targeting: Targeting::UniformRandom,
            diurnal: DiurnalPattern::flat(),
            active_from: SimTime::ZERO,
            active_until: SimTime::from_days(10),
            seed: 7,
        }
    }

    #[test]
    fn diurnal_intensity_means_one_and_peaks_right() {
        let p = DiurnalPattern { amplitude: 0.8, peak_hour: 9.0 };
        let mut sum = 0.0;
        for m in 0..1440 {
            sum += p.intensity(SimTime(m * 60));
        }
        assert!((sum / 1440.0 - 1.0).abs() < 1e-3, "mean {}", sum / 1440.0);
        let at_peak = p.intensity(SimTime::from_hours(9));
        let off_peak = p.intensity(SimTime::from_hours(21));
        assert!(at_peak > 1.7 && off_peak < 0.3, "peak {at_peak} trough {off_peak}");
        assert_eq!(DiurnalPattern::flat().intensity(SimTime(0)), 1.0);
    }

    #[test]
    fn contact_volume_tracks_rate() {
        let w = world();
        let pools = TargetPools::build_all(&w, 10, 1);
        let p = scanner(&w);
        let mut out = Vec::new();
        p.contacts_into(&w, &pools, SimTime::ZERO, SimTime::from_days(4), &mut out);
        // 4 days × 500 targets ± stochastic rounding.
        assert!((1900..=2100).contains(&out.len()), "expected ≈2000 contacts, got {}", out.len());
        for c in &out {
            assert_eq!(c.originator, p.originator);
            assert!(c.time < SimTime::from_days(4));
        }
    }

    #[test]
    fn window_clipping_is_exact() {
        let w = world();
        let pools = TargetPools::build_all(&w, 10, 1);
        let mut p = scanner(&w);
        p.active_from = SimTime::from_days(2);
        p.active_until = SimTime::from_days(3);
        let mut out = Vec::new();
        p.contacts_into(&w, &pools, SimTime::ZERO, SimTime::from_days(10), &mut out);
        assert!(!out.is_empty());
        for c in &out {
            assert!(c.time >= p.active_from && c.time < p.active_until, "{:?}", c.time);
        }
        // Querying a disjoint window yields nothing.
        let mut none = Vec::new();
        p.contacts_into(&w, &pools, SimTime::from_days(5), SimTime::from_days(6), &mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn generation_is_deterministic_and_window_decomposable() {
        let w = world();
        let pools = TargetPools::build_all(&w, 10, 1);
        let p = scanner(&w);
        let mut whole = Vec::new();
        p.contacts_into(&w, &pools, SimTime::ZERO, SimTime::from_days(2), &mut whole);
        let mut parts = Vec::new();
        p.contacts_into(&w, &pools, SimTime::ZERO, SimTime::from_days(1), &mut parts);
        p.contacts_into(&w, &pools, SimTime::from_days(1), SimTime::from_days(2), &mut parts);
        let key = |c: &Contact| (c.time, c.target, c.originator);
        let mut a: Vec<_> = whole.iter().map(key).collect();
        let mut b: Vec<_> = parts.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "day-by-day generation must equal whole-window generation");
    }

    #[test]
    fn repeats_raise_contact_count_per_target() {
        let w = world();
        let pools = TargetPools::build_all(&w, 500, 1);
        let mut p = scanner(&w);
        p.class = ApplicationClass::Spam;
        p.targeting = Targeting::Pool { kind: PoolKind::MailServers, focus: None };
        p.repeat_mean = 3.0;
        p.targets_per_day = 300.0;
        let mut out = Vec::new();
        p.contacts_into(&w, &pools, SimTime::ZERO, SimTime::from_days(1), &mut out);
        let per_target = out.len() as f64 / 300.0;
        assert!(per_target > 2.0, "mean contacts per target {per_target}");
    }

    #[test]
    fn diurnal_contacts_cluster_near_peak() {
        let w = world();
        let pools = TargetPools::build_all(&w, 500, 1);
        let mut p = scanner(&w);
        p.diurnal = DiurnalPattern { amplitude: 0.9, peak_hour: 12.0 };
        p.targets_per_day = 2000.0;
        let mut out = Vec::new();
        p.contacts_into(&w, &pools, SimTime::ZERO, SimTime::from_days(1), &mut out);
        let near_peak = out.iter().filter(|c| (9..15).contains(&c.time.hour_of_day())).count();
        let frac = near_peak as f64 / out.len() as f64;
        // A flat pattern would put 25% in this 6-hour window.
        assert!(frac > 0.33, "peak-window fraction {frac}");
    }
}
