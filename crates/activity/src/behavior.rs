//! Per-class behaviour parameterization.
//!
//! Each application class draws its originators' parameters — address
//! placement, daily footprint, contact kinds, targeting, diurnality,
//! lifetime — from class-specific distributions. The constants encode
//! the paper's qualitative observations: scanners walk the whole space
//! from hosting and residential blocks, spam hammers mail servers with
//! repeats, CDN and ad traffic is regional, diurnal, and eyeball-bound,
//! and malicious populations live an order of magnitude shorter than
//! benign ones (§V-A: benign decays ~10 %/month, malicious ~50 %/month).

use crate::class::ApplicationClass;
use crate::pools::PoolKind;
use crate::profile::{DiurnalPattern, OriginatorProfile, Targeting};
use bs_dns::SimTime;
use bs_netsim::det::{
    bounded, bounded_pareto, hash2, hash3, log_normal, mix64, unit_f64, weighted_pick,
};
use bs_netsim::types::{ContactKind, CountryCode};
use bs_netsim::world::{BlockProfile, World};
use std::net::Ipv4Addr;

/// Footprint distribution: bounded Pareto over distinct targets/day.
struct Footprint {
    lo: f64,
    hi: f64,
    alpha: f64,
}

/// Static behaviour table for one class.
struct ClassSpec {
    footprint: Footprint,
    /// Mean contacts per chosen target (min, max across originators).
    repeat: (f64, f64),
    /// Diurnal amplitude range (min, max).
    diurnal: (f64, f64),
    /// Probability an originator concentrates on one country, and the
    /// share of traffic sent there when it does.
    focus: (f64, f64),
    /// Median lifetime in days and log-σ of the log-normal.
    lifetime: (f64, f64),
    /// Block profiles the originator's own address prefers, with weights.
    placement: &'static [(BlockProfile, f64)],
}

fn spec(class: ApplicationClass) -> ClassSpec {
    use ApplicationClass::*;
    use BlockProfile::*;
    match class {
        AdTracker => ClassSpec {
            footprint: Footprint { lo: 3_000.0, hi: 60_000.0, alpha: 1.2 },
            repeat: (1.2, 2.0),
            diurnal: (0.6, 0.9),
            focus: (0.5, 0.6),
            lifetime: (350.0, 0.7),
            placement: &[(Hosting, 0.7), (CloudDc, 0.3)],
        },
        Cdn => ClassSpec {
            footprint: Footprint { lo: 2_000.0, hi: 40_000.0, alpha: 1.1 },
            repeat: (2.0, 4.0),
            diurnal: (0.5, 0.9),
            focus: (0.8, 0.85),
            lifetime: (250.0, 0.8),
            placement: &[(CdnPop, 1.0)],
        },
        Cloud => ClassSpec {
            footprint: Footprint { lo: 1_000.0, hi: 20_000.0, alpha: 1.2 },
            repeat: (1.5, 3.0),
            diurnal: (0.3, 0.7),
            focus: (0.4, 0.6),
            lifetime: (400.0, 0.7),
            placement: &[(CloudDc, 1.0)],
        },
        Crawler => ClassSpec {
            footprint: Footprint { lo: 500.0, hi: 15_000.0, alpha: 1.2 },
            repeat: (1.2, 2.0),
            diurnal: (0.1, 0.3),
            focus: (0.2, 0.5),
            lifetime: (350.0, 0.7),
            placement: &[(Hosting, 0.5), (CloudDc, 0.5)],
        },
        Dns => ClassSpec {
            footprint: Footprint { lo: 300.0, hi: 8_000.0, alpha: 1.2 },
            repeat: (1.5, 3.0),
            diurnal: (0.2, 0.5),
            focus: (0.4, 0.7),
            lifetime: (500.0, 0.6),
            placement: &[(IspInfra, 0.7), (Hosting, 0.3)],
        },
        Mail => ClassSpec {
            footprint: Footprint { lo: 300.0, hi: 10_000.0, alpha: 1.25 },
            repeat: (1.1, 1.6),
            diurnal: (0.7, 0.95),
            focus: (0.7, 0.8),
            lifetime: (400.0, 0.7),
            placement: &[(IspInfra, 0.4), (Enterprise, 0.35), (Hosting, 0.25)],
        },
        Ntp => ClassSpec {
            footprint: Footprint { lo: 200.0, hi: 5_000.0, alpha: 1.2 },
            repeat: (1.5, 3.0),
            diurnal: (0.1, 0.4),
            focus: (0.3, 0.6),
            lifetime: (500.0, 0.6),
            placement: &[(Academic, 0.5), (IspInfra, 0.5)],
        },
        P2p => ClassSpec {
            footprint: Footprint { lo: 300.0, hi: 6_000.0, alpha: 1.15 },
            repeat: (1.1, 1.6),
            diurnal: (0.3, 0.6),
            focus: (0.3, 0.5),
            lifetime: (120.0, 0.9),
            placement: &[(Residential, 1.0)],
        },
        Push => ClassSpec {
            footprint: Footprint { lo: 500.0, hi: 15_000.0, alpha: 1.2 },
            repeat: (1.5, 3.0),
            diurnal: (0.3, 0.6),
            focus: (0.3, 0.5),
            lifetime: (400.0, 0.7),
            placement: &[(CloudDc, 0.6), (Hosting, 0.4)],
        },
        Scan => ClassSpec {
            footprint: Footprint { lo: 3_000.0, hi: 200_000.0, alpha: 0.95 },
            repeat: (1.0, 1.1),
            diurnal: (0.0, 0.2),
            focus: (0.05, 0.5),
            // Mixture handled in lifetime_days: a short-lived majority
            // plus a long-lived core.
            lifetime: (20.0, 0.8),
            placement: &[(Hosting, 0.6), (Residential, 0.3), (Academic, 0.1)],
        },
        Spam => ClassSpec {
            footprint: Footprint { lo: 500.0, hi: 30_000.0, alpha: 1.05 },
            repeat: (2.0, 4.0),
            diurnal: (0.0, 0.3),
            focus: (0.3, 0.5),
            lifetime: (25.0, 0.7),
            placement: &[(Residential, 0.55), (Hosting, 0.35), (Enterprise, 0.10)],
        },
        Update => ClassSpec {
            footprint: Footprint { lo: 1_000.0, hi: 20_000.0, alpha: 1.2 },
            repeat: (1.2, 2.0),
            diurnal: (0.4, 0.7),
            focus: (0.8, 0.9),
            lifetime: (500.0, 0.6),
            placement: &[(Hosting, 0.5), (Enterprise, 0.5)],
        },
    }
}

/// Scanner port mix: which single protocol a scanner probes, matching
/// the paper's observations (ssh dominates; HTTP/HTTPS, telnet, ICMP,
/// DNS, NTP follow; some scanners sweep several ports).
fn scan_kinds(h: u64) -> Vec<ContactKind> {
    const CHOICES: [(&[ContactKind], f64); 8] = [
        (&[ContactKind::ProbeTcp(22)], 0.30),
        (&[ContactKind::ProbeTcp(80)], 0.15),
        (&[ContactKind::ProbeTcp(443)], 0.10),
        (&[ContactKind::ProbeTcp(23)], 0.10),
        (&[ContactKind::ProbeIcmp], 0.15),
        (&[ContactKind::ProbeUdp(53)], 0.05),
        (&[ContactKind::ProbeUdp(123)], 0.05),
        (&[ContactKind::ProbeTcp(22), ContactKind::ProbeTcp(80), ContactKind::ProbeTcp(443)], 0.10),
    ];
    let weights: Vec<f64> = CHOICES.iter().map(|c| c.1).collect();
    CHOICES[weighted_pick(h, &weights)].0.to_vec()
}

/// Contact kinds for each class.
fn kinds_for(class: ApplicationClass, h: u64) -> Vec<ContactKind> {
    use ApplicationClass::*;
    match class {
        AdTracker => vec![ContactKind::WebBug],
        Cdn => vec![ContactKind::CdnDelivery],
        Cloud => vec![ContactKind::CloudApp],
        Crawler => vec![ContactKind::HttpFetch],
        Dns => vec![ContactKind::DnsService],
        Mail => vec![ContactKind::Smtp],
        Spam => vec![ContactKind::SmtpSpam],
        Ntp => vec![ContactKind::NtpService],
        // Mis-behaving P2P clients also spray random high ports
        // (paper §IV-C observes p2p traffic hitting darknets).
        P2p => vec![
            ContactKind::P2p,
            ContactKind::P2p,
            ContactKind::ProbeTcp(10_000 + (h % 50_000) as u16),
        ],
        Push => vec![ContactKind::PushKeepalive],
        Scan => scan_kinds(h),
        Update => vec![ContactKind::UpdatePoll],
    }
}

/// Target pool for each class ([`Targeting::UniformRandom`] for scan).
fn pool_for(class: ApplicationClass) -> Option<PoolKind> {
    use ApplicationClass::*;
    match class {
        Scan => None,
        Mail | Spam => Some(PoolKind::MailServers),
        Crawler => Some(PoolKind::WebServers),
        Dns => Some(PoolKind::NameServers),
        Ntp => Some(PoolKind::AnyLive),
        Cloud => Some(PoolKind::AnyLive),
        AdTracker | Cdn | P2p | Push | Update => Some(PoolKind::Eyeballs),
    }
}

/// Lifetime of one incarnation in days. Scanners are a mixture: a
/// short-lived majority plus a persistent core ("a core of slower
/// scanners are always present", §VI-C).
pub fn lifetime_days(class: ApplicationClass, h: u64) -> f64 {
    let s = spec(class);
    if class == ApplicationClass::Scan && unit_f64(mix64(h ^ 0xC0DE)) < 0.35 {
        return log_normal(h, (400.0f64).ln(), 0.6).clamp(30.0, 2_000.0);
    }
    log_normal(h, s.lifetime.0.ln(), s.lifetime.1).clamp(2.0, 3_000.0)
}

/// Choose an originator address for a class, optionally inside one
/// country, optionally pinned to a specific /24 (scanner teams).
pub fn originator_addr(
    world: &World,
    class: ApplicationClass,
    h: u64,
    region: Option<CountryCode>,
    team_block: Option<Ipv4Addr>,
) -> Ipv4Addr {
    if let Some(block) = team_block {
        // A distinct host inside the team's /24, avoiding .0 and .255.
        let low = 1 + (mix64(h ^ 0x7EA4) % 254) as u32;
        return Ipv4Addr::from((u32::from(block) & 0xFFFF_FF00) | low);
    }
    let s = spec(class);
    let profiles: Vec<BlockProfile> = s.placement.iter().map(|p| p.0).collect();
    let weights: Vec<f64> = s.placement.iter().map(|p| p.1).collect();
    let want = profiles[weighted_pick(mix64(h ^ 0x9A5), &weights)];
    let slash8s = region.map(|cc| world.slash8s_of(cc));
    let mut cand = world.random_public_addr(h);
    for i in 0..600u64 {
        let hh = hash2(h, i, 0xADD4);
        cand = match &slash8s {
            Some(list) if !list.is_empty() => {
                let a = list[bounded(hh, list.len() as u64) as usize];
                Ipv4Addr::from(((a as u32) << 24) | (mix64(hh) & 0x00FF_FFFF) as u32)
            }
            _ => world.random_public_addr(hh),
        };
        if world.block_profile(cand) == want {
            return cand;
        }
    }
    cand
}

/// Build one originator's full profile.
#[allow(clippy::too_many_arguments)]
pub fn make_profile(
    world: &World,
    scenario_seed: u64,
    class: ApplicationClass,
    slot: u64,
    incarnation: u64,
    active_from: SimTime,
    active_until: SimTime,
    rate_scale: f64,
    region: Option<CountryCode>,
    team_block: Option<Ipv4Addr>,
) -> OriginatorProfile {
    let s = spec(class);
    let h = hash3(scenario_seed ^ 0x0816_0001, class.index() as u64, slot, incarnation);
    let originator = originator_addr(world, class, h, region, team_block);
    let targets_per_day =
        bounded_pareto(mix64(h ^ 0xF007), s.footprint.alpha, s.footprint.lo, s.footprint.hi)
            * rate_scale;
    let u_rep = unit_f64(mix64(h ^ 0x4E9));
    let repeat_mean = s.repeat.0 + (s.repeat.1 - s.repeat.0) * u_rep;
    let u_amp = unit_f64(mix64(h ^ 0xD1));
    let amplitude = s.diurnal.0 + (s.diurnal.1 - s.diurnal.0) * u_amp;
    // Peak hour follows the originator's country (a proxy for local
    // business hours), with jitter.
    let cc_hash =
        world.country_of(originator).map(|c| hash2(1, c.0[0] as u64, c.0[1] as u64)).unwrap_or(0);
    let peak_hour = (bounded(cc_hash, 24) as f64 + unit_f64(mix64(h ^ 0x11)) * 4.0) % 24.0;
    // Regional focus: prefer the originator's own country.
    let focus = if unit_f64(mix64(h ^ 0x22)) < s.focus.0 {
        world.country_of(originator).map(|cc| (cc, s.focus.1))
    } else {
        None
    };
    let targeting = match pool_for(class) {
        None => Targeting::UniformRandom,
        Some(kind) => Targeting::Pool { kind, focus },
    };
    OriginatorProfile {
        originator,
        class,
        targets_per_day,
        repeat_mean,
        kinds: kinds_for(class, mix64(h ^ 0x33)),
        targeting,
        diurnal: DiurnalPattern { amplitude, peak_hour },
        active_from,
        active_until,
        seed: mix64(h ^ 0x44),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_netsim::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn placement_respects_class_preferences() {
        let w = world();
        let mut cdn_ok = 0;
        for i in 0..50u64 {
            let a = originator_addr(&w, ApplicationClass::Cdn, mix64(i), None, None);
            if w.block_profile(a) == BlockProfile::CdnPop {
                cdn_ok += 1;
            }
        }
        assert!(cdn_ok >= 45, "cdn placement {cdn_ok}/50");
    }

    #[test]
    fn regional_placement_stays_in_country() {
        let w = world();
        let jp = CountryCode::new("jp").unwrap();
        for i in 0..30u64 {
            let a = originator_addr(&w, ApplicationClass::Spam, mix64(i), Some(jp), None);
            assert_eq!(w.country_of(a), Some(jp), "{a}");
        }
    }

    #[test]
    fn team_block_pins_slash24() {
        let w = world();
        let block: Ipv4Addr = "198.51.100.0".parse().unwrap();
        for i in 0..20u64 {
            let a = originator_addr(&w, ApplicationClass::Scan, mix64(i), None, Some(block));
            assert_eq!(u32::from(a) & 0xFFFF_FF00, u32::from(block));
            let low = u32::from(a) & 0xFF;
            assert!((1..=254).contains(&low));
        }
    }

    #[test]
    fn malicious_lifetimes_are_much_shorter() {
        let med = |class: ApplicationClass| {
            let mut v: Vec<f64> = (0..400u64).map(|i| lifetime_days(class, mix64(i))).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let spam = med(ApplicationClass::Spam);
        let mail = med(ApplicationClass::Mail);
        let cloud = med(ApplicationClass::Cloud);
        assert!(spam < 60.0, "spam median {spam}");
        assert!(mail > 200.0, "mail median {mail}");
        assert!(cloud > 250.0, "cloud median {cloud}");
        assert!(mail / spam > 5.0, "ratio {}", mail / spam);
    }

    #[test]
    fn scanner_core_is_long_lived() {
        let lifetimes: Vec<f64> =
            (0..600u64).map(|i| lifetime_days(ApplicationClass::Scan, mix64(i))).collect();
        let long = lifetimes.iter().filter(|l| **l > 100.0).count();
        let frac = long as f64 / lifetimes.len() as f64;
        assert!((0.2..0.55).contains(&frac), "long-lived scanner fraction {frac}");
    }

    #[test]
    fn profiles_are_deterministic_and_sane() {
        let w = world();
        let mk = || {
            make_profile(
                &w,
                7,
                ApplicationClass::Spam,
                3,
                0,
                SimTime::ZERO,
                SimTime::from_days(10),
                1.0,
                None,
                None,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(a.targets_per_day >= 500.0 * 0.99 && a.targets_per_day <= 30_000.0 * 1.01);
        assert!(a.repeat_mean >= 2.0 && a.repeat_mean <= 4.0);
        assert_eq!(a.kinds, vec![ContactKind::SmtpSpam]);
        assert!(matches!(a.targeting, Targeting::Pool { kind: PoolKind::MailServers, .. }));
    }

    #[test]
    fn rate_scale_multiplies_footprint() {
        let w = world();
        let base = make_profile(
            &w,
            7,
            ApplicationClass::Scan,
            1,
            0,
            SimTime::ZERO,
            SimTime::from_days(1),
            1.0,
            None,
            None,
        );
        let scaled = make_profile(
            &w,
            7,
            ApplicationClass::Scan,
            1,
            0,
            SimTime::ZERO,
            SimTime::from_days(1),
            0.25,
            None,
            None,
        );
        assert!((scaled.targets_per_day / base.targets_per_day - 0.25).abs() < 1e-9);
    }

    #[test]
    fn scan_kind_mix_is_ssh_heavy() {
        let mut ssh = 0;
        let mut multi = 0;
        for i in 0..1000u64 {
            let k = scan_kinds(mix64(i));
            if k.len() > 1 {
                multi += 1;
            } else if k[0] == ContactKind::ProbeTcp(22) {
                ssh += 1;
            }
        }
        assert!((250..=350).contains(&ssh), "ssh count {ssh}");
        assert!((60..=140).contains(&multi), "multi count {multi}");
    }
}
