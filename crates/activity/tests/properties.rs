//! Property-based tests for activity generation.

use bs_activity::behavior::{lifetime_days, make_profile};
use bs_activity::{ApplicationClass, Scenario, ScenarioConfig, TargetPools};
use bs_dns::{SimDuration, SimTime};
use bs_netsim::world::{World, WorldConfig};
use proptest::prelude::*;

fn world() -> World {
    World::new(WorldConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated contact stays inside the requested window, names
    /// the profile's originator, and uses one of its contact kinds.
    #[test]
    fn contacts_respect_profile_invariants(
        class_idx in 0usize..12,
        slot in 0u64..50,
        from_day in 0u64..3,
        span_days in 1u64..3,
    ) {
        let w = world();
        let pools = TargetPools::build_all(&w, 200, 1);
        let class = ApplicationClass::from_index(class_idx).unwrap();
        let p = make_profile(
            &w, 99, class, slot, 0,
            SimTime::ZERO, SimTime::from_days(6),
            0.05, // tiny rate for test speed
            None, None,
        );
        let from = SimTime::from_days(from_day);
        let until = SimTime::from_days(from_day + span_days);
        let mut out = Vec::new();
        p.contacts_into(&w, &pools, from, until, &mut out);
        for c in &out {
            prop_assert!(c.time >= from && c.time < until);
            prop_assert_eq!(c.originator, p.originator);
            prop_assert!(p.kinds.contains(&c.kind), "{:?} not in {:?}", c.kind, p.kinds);
        }
    }

    /// Lifetimes are positive, bounded, and deterministic.
    #[test]
    fn lifetimes_bounded(class_idx in 0usize..12, h in any::<u64>()) {
        let class = ApplicationClass::from_index(class_idx).unwrap();
        let l = lifetime_days(class, h);
        prop_assert!((2.0..=3000.0).contains(&l), "lifetime {l}");
        prop_assert_eq!(l, lifetime_days(class, h));
    }

    /// Scenario ground truth covers exactly the profiles overlapping
    /// the window.
    #[test]
    fn ground_truth_matches_overlap(seed in any::<u64>(), day in 0u64..4) {
        let w = world();
        let mut cfg = ScenarioConfig::small(seed, SimDuration::from_days(5));
        cfg.pool_size = 100;
        let s = Scenario::new(&w, cfg);
        let from = SimTime::from_days(day);
        let until = SimTime::from_days(day + 1);
        let active = s.active_originators(from, until);
        let expected = s
            .profiles()
            .iter()
            .filter(|p| p.overlaps(from, until))
            .count();
        prop_assert_eq!(active.len(), expected);
    }
}
