//! The wall-clock sampler: a background thread snapshotting every
//! live thread's shared frame stack at a fixed rate.
//!
//! Sampling is cooperative-free: workers never stop, never take a
//! lock the sampler holds — the seqlock in `bs_trace::stack` means a
//! concurrent update costs the sampler a retry (counted as *torn* and
//! skipped past the retry budget, never misattributed). Aggregates
//! are collapsed stacks — `path → sample count` — which is exactly
//! the folded format flamegraph tooling (inferno, speedscope,
//! flamegraph.pl) eats directly.
//!
//! The tick loop is drift-corrected: each deadline is `previous +
//! period`, not `now + period`, so the effective rate stays at the
//! requested Hz even when individual ticks jitter; a stall longer
//! than a second resets the schedule instead of bursting to catch up.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

#[derive(Default)]
struct Aggregates {
    /// Collapsed stacks: interned frame path → samples observed there.
    stacks: HashMap<Vec<u32>, u64>,
    /// Samples where a thread was alive but inside no span.
    idle: u64,
    /// Seqlock reads that exhausted the retry budget (skipped).
    torn: u64,
    /// Total sampler ticks taken.
    ticks: u64,
    /// Threads seen on the most recent tick.
    threads: u64,
    /// The rate the sampler is (or was last) running at.
    hz: u32,
}

fn agg() -> MutexGuard<'static, Aggregates> {
    static AGG: OnceLock<Mutex<Aggregates>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(Aggregates::default())).lock().unwrap_or_else(|e| e.into_inner())
}

struct Running {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

fn state() -> &'static Mutex<Option<Running>> {
    static STATE: OnceLock<Mutex<Option<Running>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Start the sampler at `hz` samples/second (clamped to `1..=1000`).
/// Enables `bs_trace` profiling mode, resets every profiler aggregate
/// (sampler stacks, cost table, allocator counters), and spawns the
/// `bs-prof-sampler` thread. Returns `false` if already running.
pub fn start(hz: u32) -> bool {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    if st.is_some() {
        return false;
    }
    crate::reset();
    let hz = hz.clamp(1, 1000);
    agg().hz = hz;
    bs_trace::enable_profiling();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new()
        .name("bs-prof-sampler".into())
        .spawn(move || run_loop(hz, &stop2))
        .expect("spawn bs-prof-sampler");
    *st = Some(Running { stop, thread });
    true
}

/// Stop the sampler (waits for the thread) and turn profiling mode
/// off. Aggregates remain readable after stopping. No-op when not
/// running.
pub fn stop() {
    let running = state().lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(r) = running {
        r.stop.store(true, Ordering::Relaxed);
        let _ = r.thread.join();
    }
    bs_trace::disable_profiling();
}

/// Whether the sampler thread is live.
pub fn is_running() -> bool {
    state().lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

fn run_loop(hz: u32, stop: &AtomicBool) {
    let period = Duration::from_nanos(1_000_000_000 / hz as u64);
    let mut next = Instant::now() + period;
    while !stop.load(Ordering::Relaxed) {
        // Sleep toward the deadline in short slices so stop() never
        // waits more than ~20 ms.
        loop {
            let now = Instant::now();
            if now >= next || stop.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep((next - now).min(Duration::from_millis(20)));
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        tick();
        next += period;
        let now = Instant::now();
        if now > next + Duration::from_secs(1) {
            next = now + period;
        }
    }
}

fn tick() {
    let (snaps, torn) = bs_trace::stack::sample_all();
    let mut a = agg();
    a.ticks += 1;
    a.torn += torn;
    a.threads = snaps.len() as u64;
    for snap in snaps {
        if snap.frames.is_empty() {
            a.idle += 1;
        } else {
            *a.stacks.entry(snap.frames).or_insert(0) += 1;
        }
    }
    let (ticks, threads, torn_total, busy) =
        (a.ticks, a.threads, a.torn, a.stacks.values().sum::<u64>());
    drop(a);
    bs_telemetry::gauge_set("prof.ticks", ticks as i64);
    bs_telemetry::gauge_set("prof.threads", threads as i64);
    bs_telemetry::gauge_set("prof.torn", torn_total as i64);
    bs_telemetry::gauge_set("prof.samples.busy", busy as i64);
}

/// Clear the collapsed-stack aggregates (called by [`crate::reset`]).
pub(crate) fn reset_aggregates() {
    let mut a = agg();
    let hz = a.hz;
    *a = Aggregates::default();
    a.hz = hz;
}

/// `(busy_samples, idle_samples, torn_reads, ticks)` so far.
pub fn sample_counts() -> (u64, u64, u64, u64) {
    let a = agg();
    (a.stacks.values().sum(), a.idle, a.torn, a.ticks)
}

/// Inferno-compatible folded collapsed stacks: one line per observed
/// path, `frame;frame;frame count`, deterministically sorted. Idle
/// samples are excluded (they have no frames to fold).
pub fn folded() -> String {
    let paths: Vec<(Vec<u32>, u64)> = {
        let a = agg();
        a.stacks.iter().map(|(k, v)| (k.clone(), *v)).collect()
    };
    let mut lines: Vec<String> = paths
        .into_iter()
        .map(|(path, count)| {
            let names: Vec<&str> = path.iter().map(|&id| bs_trace::stack::resolve(id)).collect();
            format!("{} {}", names.join(";"), count)
        })
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Per-stage self/total sample counts, busiest first. *Total* counts
/// samples where the stage appears anywhere on the path (once per
/// sample); *self* counts samples where it is the leaf.
pub fn stage_totals() -> Vec<(String, u64, u64)> {
    let a = agg();
    let mut totals: HashMap<u32, (u64, u64)> = HashMap::new();
    for (path, count) in a.stacks.iter() {
        if let Some(&leaf) = path.last() {
            totals.entry(leaf).or_default().0 += count;
        }
        let mut seen: Vec<u32> = Vec::with_capacity(path.len());
        for &id in path {
            if !seen.contains(&id) {
                seen.push(id);
                totals.entry(id).or_default().1 += count;
            }
        }
    }
    drop(a);
    let mut rows: Vec<(String, u64, u64)> = totals
        .into_iter()
        .map(|(id, (selfc, total))| (bs_trace::stack::resolve(id).to_string(), selfc, total))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
    rows
}

/// JSON for the `/profile/top` route: sampler meta plus the ranked
/// stage table.
pub fn top_json() -> String {
    let (busy, idle, torn, ticks) = sample_counts();
    let hz = agg().hz;
    let mut s = format!(
        "{{\n  \"hz\": {hz},\n  \"ticks\": {ticks},\n  \"busy\": {busy},\n  \"idle\": {idle},\n  \"torn\": {torn},\n  \"stages\": ["
    );
    for (i, (name, selfc, total)) in stage_totals().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"stage\": \"{name}\", \"self\": {selfc}, \"total\": {total}}}"
        ));
    }
    s.push_str("\n  ]\n}");
    s
}

/// Human-readable ranked-stage table for `stats --top` and the CLI
/// exit summary.
pub fn top_table() -> String {
    use std::fmt::Write as _;
    let (busy, idle, torn, ticks) = sample_counts();
    let mut s = String::new();
    let _ = writeln!(s, "samples: busy={busy} idle={idle} torn={torn} ticks={ticks}");
    let _ = writeln!(s, "{:<30} {:>8} {:>8} {:>7}", "stage", "self", "total", "self%");
    for (name, selfc, total) in stage_totals() {
        let pct = if busy == 0 { 0.0 } else { selfc as f64 * 100.0 / busy as f64 };
        let _ = writeln!(s, "{:<30} {:>8} {:>8} {:>6.1}%", name, selfc, total, pct);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_and_top_render_aggregates() {
        let _g = crate::testutil::serial();
        reset_aggregates();
        let a_id = bs_trace::stack::intern("sampler.test.root");
        let b_id = bs_trace::stack::intern("sampler.test.leaf");
        {
            let mut a = agg();
            a.stacks.insert(vec![a_id, b_id], 7);
            a.stacks.insert(vec![a_id], 3);
            a.idle = 2;
            a.ticks = 12;
        }
        let folded = folded();
        assert!(folded.contains("sampler.test.root;sampler.test.leaf 7"));
        assert!(folded.contains("sampler.test.root 3"));
        let totals = stage_totals();
        let root = totals.iter().find(|(n, _, _)| n == "sampler.test.root").expect("root");
        assert_eq!(root.1, 3, "self = leaf samples only");
        assert_eq!(root.2, 10, "total = on-path samples");
        let (busy, idle, _, _) = sample_counts();
        assert_eq!((busy, idle), (10, 2));
        assert!(top_json().contains("\"stage\": \"sampler.test.leaf\""));
        assert!(top_table().contains("sampler.test.root"));
        reset_aggregates();
    }

    #[test]
    fn start_stop_samples_a_live_span() {
        let _g = crate::testutil::serial();
        assert!(start(200), "sampler starts");
        assert!(!start(200), "second start refused");
        assert!(is_running());
        {
            let _s = bs_trace::span("sampler.test.busy");
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(120) {
                std::hint::black_box(0u64);
            }
        }
        stop();
        assert!(!is_running());
        assert!(!bs_trace::is_profiling(), "stop turns profiling off");
        let (busy, _, _, ticks) = sample_counts();
        assert!(ticks > 0, "sampler ticked");
        assert!(busy > 0, "busy-loop span was sampled");
        assert!(folded().contains("sampler.test.busy"));
    }
}
