//! Exact per-stage cost attribution: wall time per `(stage, window)`
//! joined against the conservation ledger's record counts.
//!
//! [`crate::stage`] scopes file `(stage, window) → (ns, calls)` here;
//! [`rows`] joins each cell with `bs_trace::ledger::snapshot()` to
//! find how many records that stage saw in that window, yielding the
//! headline metric **ns per record**. The join is exact, not sampled:
//! both sides come from the same instrumented call sites.
//!
//! Stage naming contract: a cost stage either matches a ledger stage
//! exactly (`"sensor.stream"`, `"core.window"`) or is the *family
//! prefix* of per-instance ledger stages (`"sensor.stream.shard"`
//! covering `"sensor.stream.shard.0"`, `.1`, …). Exact matches win;
//! the prefix sum is only used when no exact cell exists, so a family
//! never double-counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};

type Table = BTreeMap<(&'static str, u64), (u64, u64)>;

fn table() -> MutexGuard<'static, Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new())).lock().unwrap_or_else(|e| e.into_inner())
}

/// File `ns` of wall time for one invocation of `stage` on `window`.
/// Called by [`crate::StageScope`] on drop.
pub fn record(stage: &'static str, window: u64, ns: u64) {
    let mut t = table();
    let cell = t.entry((stage, window)).or_insert((0, 0));
    cell.0 += ns;
    cell.1 += 1;
}

/// Clear the table (start of a profiling session).
pub fn reset() {
    table().clear();
}

/// One `(stage, window)` cost cell joined with the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostRow {
    /// Stage (or family-prefix) name.
    pub stage: &'static str,
    /// Window key (`bs_trace::ledger::NO_WINDOW` outside any window).
    pub window: u64,
    /// Total wall nanoseconds across calls.
    pub ns: u64,
    /// Stage invocations.
    pub calls: u64,
    /// Records the ledger saw for this stage+window (0 when the
    /// ledger has no matching cell — e.g. profiling without tracing
    /// on a stage that doesn't file ledger rows).
    pub records: u64,
    /// `ns / records`, the headline unit cost (0 when `records` is 0).
    pub ns_per_record: u64,
}

/// Join the cost table against the current ledger snapshot.
pub fn rows() -> Vec<CostRow> {
    let costs: Vec<_> = table().iter().map(|(k, v)| (*k, *v)).collect();
    let ledger = bs_trace::ledger::snapshot();
    costs
        .into_iter()
        .map(|((stage, window), (ns, calls))| {
            let records = match ledger.get(&(stage.to_string(), window)) {
                Some(flow) => flow.records_in,
                None => {
                    let prefix = format!("{stage}.");
                    ledger
                        .iter()
                        .filter(|((s, w), _)| *w == window && s.starts_with(&prefix))
                        .map(|(_, flow)| flow.records_in)
                        .sum()
                }
            };
            let ns_per_record = ns.checked_div(records).unwrap_or(0);
            CostRow { stage, window, ns, calls, records, ns_per_record }
        })
        .collect()
}

/// Human-readable ns-per-record table, one line per `(stage, window)`.
pub fn render() -> String {
    let rows = rows();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<26} {:>12} {:>8} {:>14} {:>10} {:>10}",
        "stage", "window", "calls", "ns", "records", "ns/rec"
    );
    for r in &rows {
        let win = if r.window == bs_trace::ledger::NO_WINDOW {
            "-".to_string()
        } else {
            r.window.to_string()
        };
        let _ = writeln!(
            s,
            "{:<26} {:>12} {:>8} {:>14} {:>10} {:>10}",
            r.stage, win, r.calls, r.ns, r.records, r.ns_per_record
        );
    }
    s
}

/// JSON export of [`rows`] for machine consumers.
pub fn json() -> String {
    let rows = rows();
    let mut s = String::from("{\n  \"stages\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"stage\": \"{}\", \"window\": {}, \"calls\": {}, \"ns\": {}, \"records\": {}, \"ns_per_record\": {}}}",
            r.stage, r.window, r.calls, r.ns, r.records, r.ns_per_record
        ));
    }
    s.push_str("\n  ]\n}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ledger_match_wins_over_prefix_sum() {
        let _g = crate::testutil::serial();
        bs_trace::enable();
        bs_trace::ledger::reset();
        reset();
        {
            let _w = bs_trace::ledger::window_scope(5);
            bs_trace::ledger::record("cost.test.exact", 10, &[("kept", 10)]);
            bs_trace::ledger::record("cost.test.exact.sub", 99, &[("kept", 99)]);
        }
        record("cost.test.exact", 5, 1000);
        let r = rows().into_iter().find(|r| r.stage == "cost.test.exact").expect("row");
        assert_eq!(r.records, 10, "exact cell, not 10+99");
        assert_eq!(r.ns_per_record, 100);
        bs_trace::ledger::reset();
        reset();
        bs_trace::disable();
    }

    #[test]
    fn family_prefix_sums_per_instance_ledger_stages() {
        let _g = crate::testutil::serial();
        bs_trace::enable();
        bs_trace::ledger::reset();
        reset();
        {
            let _w = bs_trace::ledger::window_scope(3);
            bs_trace::ledger::record("cost.test.fam.shard.0", 4, &[("kept", 4)]);
            bs_trace::ledger::record("cost.test.fam.shard.1", 6, &[("kept", 6)]);
        }
        record("cost.test.fam.shard", 3, 2000);
        record("cost.test.fam.shard", 3, 500);
        let r = rows().into_iter().find(|r| r.stage == "cost.test.fam.shard").expect("row");
        assert_eq!(r.calls, 2);
        assert_eq!(r.ns, 2500);
        assert_eq!(r.records, 10, "family prefix sums shard instances");
        assert_eq!(r.ns_per_record, 250);
        assert!(render().contains("cost.test.fam.shard"));
        bs_trace::ledger::reset();
        reset();
        bs_trace::disable();
    }
}
