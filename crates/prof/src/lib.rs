//! `bs-prof` — always-on sampling profiler for the dns-backscatter
//! pipeline.
//!
//! Three coupled answers to "where does the time (and memory) go?":
//!
//! * a **wall-clock sampler** ([`start`] / [`stop`]): a background
//!   thread that snapshots every live thread's `bs-trace` frame stack
//!   (see `bs_trace::stack`) at a configurable Hz and aggregates the
//!   paths into collapsed stacks, exported as inferno-compatible
//!   folded text ([`folded`]) and JSON ([`top_json`]);
//! * **exact per-stage cost attribution** ([`stage`] + [`cost`]):
//!   wall-clock scopes around the pipeline's unit-of-work stages,
//!   joined against the conservation ledger's record counts into a
//!   "ns per record per stage per window" table;
//! * a **counting allocator** ([`CountingAlloc`], [`alloc`]): a
//!   `#[global_allocator]` wrapper attributing allocation count and
//!   bytes to the stage active on the allocating thread.
//!
//! # Cost model
//!
//! Same discipline as `bs-trace`: while profiling is off (the default)
//! every entry point — [`stage`], each allocator hook — pays one
//! relaxed atomic load and nothing else. With the sampler running the
//! hot-path cost is two relaxed stores per stage scope plus two
//! relaxed `fetch_add`s per allocation; the sampler itself wakes
//! `hz` times a second regardless of workload. The bench suite
//! publishes `bench.prof.overhead_pct.{disabled,hz99}` to keep both
//! numbers honest.
//!
//! The only `unsafe` in the crate is the [`std::alloc::GlobalAlloc`]
//! forwarding impl in [`alloc`]; everything else is `#[deny(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cost;
mod sampler;

pub use alloc::CountingAlloc;
pub use sampler::{folded, is_running, sample_counts, start, stop, top_json, top_table};

use std::time::Instant;

/// Start a cost-attribution scope for `stage` working on `window`.
///
/// While profiling is off this is a single relaxed atomic load. While
/// on, the scope: pushes a frame onto the thread's shared profiler
/// stack (so samples attribute here), redirects allocator attribution
/// to this stage, and on drop files its wall time into the
/// [`cost`] table under `(stage, window)`.
///
/// `window` is passed explicitly rather than read from
/// `bs_trace::ledger::current_window()` at drop time because the
/// ledger's window scope typically closes before the stage scope does
/// (guard drop order inside flush paths).
pub fn stage(name: &'static str, window: u64) -> StageScope {
    if !bs_trace::is_profiling() {
        return StageScope { inner: None };
    }
    let slot = alloc::register(name);
    let prev_alloc = alloc::set_stage(slot);
    let framed = bs_trace::stack::push_frame(name);
    StageScope {
        inner: Some(ActiveStage { name, window, start: Instant::now(), framed, prev_alloc }),
    }
}

struct ActiveStage {
    name: &'static str,
    window: u64,
    start: Instant,
    framed: bool,
    prev_alloc: u16,
}

/// An open cost-attribution scope; files its wall time on drop.
/// Created by [`stage`].
#[must_use = "a stage scope attributes cost until dropped; binding to `_` ends it immediately"]
pub struct StageScope {
    inner: Option<ActiveStage>,
}

impl StageScope {
    /// Whether the scope was created while profiling was off (it
    /// records nothing).
    pub fn is_inert(&self) -> bool {
        self.inner.is_none()
    }
}

impl Drop for StageScope {
    fn drop(&mut self) {
        if let Some(a) = self.inner.take() {
            if a.framed {
                bs_trace::stack::pop_frame();
            }
            alloc::set_stage(a.prev_alloc);
            let ns = u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cost::record(a.name, a.window, ns);
        }
    }
}

/// Reset every profiler aggregate (sampler stacks, cost table,
/// allocator counters). [`start`] calls this so each profiling session
/// reports only its own run.
pub fn reset() {
    sampler::reset_aggregates();
    cost::reset();
    alloc::reset_counts();
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// The profiling flag, cost table, and allocator slots are
    /// process-global; tests that toggle them serialize on this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_scope_is_inert_while_profiling_is_off() {
        let _g = testutil::serial();
        bs_trace::disable_profiling();
        let s = stage("prof.test.inert", 0);
        assert!(s.is_inert());
        drop(s);
        assert!(
            cost::rows().is_empty() || !cost::rows().iter().any(|r| r.stage == "prof.test.inert")
        );
    }

    #[test]
    fn stage_scope_files_cost_under_its_window() {
        let _g = testutil::serial();
        bs_trace::enable_profiling();
        {
            let _s = stage("prof.test.cost", 42);
            std::hint::black_box(vec![0u8; 64]);
        }
        bs_trace::disable_profiling();
        let row = cost::rows()
            .into_iter()
            .find(|r| r.stage == "prof.test.cost" && r.window == 42)
            .expect("cost row filed");
        assert_eq!(row.calls, 1);
        assert!(row.ns > 0);
    }
}
