//! The counting global allocator: attributes allocation count and
//! bytes to the pipeline stage active on the allocating thread.
//!
//! [`CountingAlloc`] wraps [`System`]. While profiling is off every
//! hook pays exactly one relaxed atomic load before forwarding. While
//! on, it adds two relaxed `fetch_add`s against the slot picked by the
//! thread-local stage id that [`crate::stage`] scopes maintain.
//!
//! Caveats (also in DESIGN §15): attribution is by *allocating
//! thread's current stage*, so allocations made by a stage but freed
//! elsewhere still count where they were made (deallocations are not
//! tracked at all — this is an allocation-pressure profile, not a live
//! heap profile), and anything allocated outside any stage scope files
//! under `(unattributed)`.
//!
//! This module is the only place in the crate (and the workspace)
//! allowed to use `unsafe`: the [`GlobalAlloc`] trait is unsafe to
//! implement, and every method body only forwards to [`System`].

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Attribution slots: slot 0 is `(unattributed)`, slots `1..MAX_STAGES`
/// are handed out by [`register`]. Overflow past the table falls back
/// to slot 0 rather than failing.
pub const MAX_STAGES: usize = 64;

static COUNTS: [AtomicU64; MAX_STAGES] = [const { AtomicU64::new(0) }; MAX_STAGES];
static BYTES: [AtomicU64; MAX_STAGES] = [const { AtomicU64::new(0) }; MAX_STAGES];

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// The slot current allocations on this thread attribute to.
    static STAGE: Cell<u16> = const { Cell::new(0) };
}

/// Register (or look up) the attribution slot for a stage name.
/// Returns slot 0 when the table is full.
pub fn register(name: &'static str) -> u16 {
    let mut table = names().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = table.iter().position(|n| *n == name) {
        return (i + 1) as u16;
    }
    if table.len() + 1 >= MAX_STAGES {
        return 0;
    }
    table.push(name);
    table.len() as u16
}

/// Point the current thread's allocations at `slot`, returning the
/// previous slot (restore it when the scope ends).
pub fn set_stage(slot: u16) -> u16 {
    STAGE.try_with(|c| c.replace(slot)).unwrap_or(0)
}

#[inline]
fn charge(size: usize) {
    if bs_trace::is_profiling() {
        let slot = STAGE.try_with(|c| c.get()).unwrap_or(0) as usize;
        let slot = if slot < MAX_STAGES { slot } else { 0 };
        COUNTS[slot].fetch_add(1, Ordering::Relaxed);
        BYTES[slot].fetch_add(size as u64, Ordering::Relaxed);
    }
}

/// A `#[global_allocator]` wrapper over [`System`] that attributes
/// allocation count/bytes to the active stage. Install it in the
/// binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bs_prof::CountingAlloc = bs_prof::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: every method forwards the exact layout it was given to
// `System`, which upholds the GlobalAlloc contract; the counting
// side-effect touches only atomics and a const-initialized
// thread-local (no allocation, no re-entrancy).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        charge(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        charge(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        charge(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// One stage's allocation totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocRow {
    /// Stage name (`(unattributed)` for slot 0).
    pub stage: &'static str,
    /// Allocations charged (alloc + alloc_zeroed + realloc calls).
    pub count: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

/// Snapshot every slot with nonzero counts, largest byte total first.
pub fn snapshot() -> Vec<AllocRow> {
    let table = names().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut rows = Vec::new();
    for slot in 0..MAX_STAGES {
        let count = COUNTS[slot].load(Ordering::Relaxed);
        let bytes = BYTES[slot].load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        let stage =
            if slot == 0 { "(unattributed)" } else { table.get(slot - 1).copied().unwrap_or("?") };
        rows.push(AllocRow { stage, count, bytes });
    }
    rows.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.stage.cmp(b.stage)));
    rows
}

/// Zero every slot (start of a profiling session).
pub fn reset_counts() {
    for slot in 0..MAX_STAGES {
        COUNTS[slot].store(0, Ordering::Relaxed);
        BYTES[slot].store(0, Ordering::Relaxed);
    }
}

/// JSON export for the `/profile/alloc` route:
/// `{"stages":[{"stage":...,"count":...,"bytes":...},...]}`.
pub fn alloc_json() -> String {
    let rows = snapshot();
    let mut s = String::from("{\n  \"stages\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"stage\": \"{}\", \"count\": {}, \"bytes\": {}}}",
            r.stage, r.count, r.bytes
        ));
    }
    s.push_str("\n  ]\n}");
    s
}

/// Human-readable allocation table for the CLI exit summary.
pub fn render() -> String {
    use std::fmt::Write as _;
    let rows = snapshot();
    let mut s = String::new();
    let _ = writeln!(s, "{:<28} {:>12} {:>14}", "stage", "allocs", "bytes");
    for r in &rows {
        let _ = writeln!(s, "{:<28} {:>12} {:>14}", r.stage, r.count, r.bytes);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_stable_and_bounded() {
        let a = register("alloc.test.a");
        assert!(a > 0);
        assert_eq!(register("alloc.test.a"), a);
        let b = register("alloc.test.b");
        assert_ne!(a, b);
    }

    #[test]
    fn charges_file_under_the_set_stage() {
        let _g = crate::testutil::serial();
        let slot = register("alloc.test.charge");
        bs_trace::enable_profiling();
        let prev = set_stage(slot);
        let before = COUNTS[slot as usize].load(Ordering::Relaxed);
        charge(128);
        charge(64);
        set_stage(prev);
        bs_trace::disable_profiling();
        let after = COUNTS[slot as usize].load(Ordering::Relaxed);
        assert_eq!(after - before, 2);
        let rows = snapshot();
        let row = rows.iter().find(|r| r.stage == "alloc.test.charge").expect("row");
        assert!(row.bytes >= 192);
    }

    #[test]
    fn disabled_charge_is_a_noop() {
        let _g = crate::testutil::serial();
        bs_trace::disable_profiling();
        let before = COUNTS[0].load(Ordering::Relaxed);
        charge(1024);
        assert_eq!(COUNTS[0].load(Ordering::Relaxed), before);
    }
}
