//! Regression tests for sampler attribution and allocator accounting,
//! run with the counting allocator actually installed as the global
//! allocator (the way the `backscatter` binary ships it).

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: bs_prof::CountingAlloc = bs_prof::CountingAlloc;

/// Both tests toggle the process-global profiling flag; serialize.
static SERIAL: Mutex<()> = Mutex::new(());

/// The sampler must attribute ≥95% of a synthetic busy-loop span's
/// wall time to the correct stage: every busy (non-idle) sample taken
/// while the only active span is `attr.test.busy` must land on it.
/// Torn seqlock reads are skipped, never misattributed, so they don't
/// dilute the ratio.
#[test]
fn sampler_attributes_busy_loop_to_its_stage() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert!(bs_prof::start(250), "sampler starts");
    {
        let _stage = bs_prof::stage("attr.test.busy", 0);
        let t0 = Instant::now();
        // Long enough for dozens of ticks even on a loaded 1-core host.
        while t0.elapsed() < Duration::from_millis(400) {
            std::hint::black_box(t0.elapsed());
        }
    }
    bs_prof::stop();

    let (busy, idle, torn, ticks) = bs_prof::sample_counts();
    assert!(ticks >= 10, "sampler barely ran: {ticks} ticks");
    assert!(busy >= 5, "too few busy samples to judge attribution: {busy} (idle={idle})");

    let mut on_stage = 0u64;
    let mut total = 0u64;
    for line in bs_prof::folded().lines() {
        let (path, count) = line.rsplit_once(' ').expect("folded line has a trailing count");
        let count: u64 = count.parse().expect("folded count parses");
        total += count;
        if path.split(';').any(|f| f == "attr.test.busy") {
            on_stage += count;
        }
    }
    assert_eq!(total, busy, "folded output accounts for every busy sample");
    assert!(
        on_stage * 100 >= total * 95,
        "attribution below 95%: {on_stage}/{total} busy samples on attr.test.busy (torn={torn})"
    );
}

/// Allocations made inside a stage scope are charged to that stage by
/// the installed global allocator.
#[test]
fn allocator_charges_stage_scoped_allocations() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    bs_trace::enable_profiling();
    let grown = {
        let _stage = bs_prof::stage("attr.test.alloc", 0);
        let mut v: Vec<Box<u64>> = Vec::new();
        for i in 0..256u64 {
            v.push(Box::new(i));
        }
        std::hint::black_box(v.len())
    };
    bs_trace::disable_profiling();
    assert_eq!(grown, 256);
    let row = bs_prof::alloc::snapshot()
        .into_iter()
        .find(|r| r.stage == "attr.test.alloc")
        .expect("stage has an allocation row");
    assert!(row.count >= 256, "boxed values charged to the stage: {}", row.count);
    assert!(row.bytes >= 256 * 8, "bytes charged: {}", row.bytes);
    assert!(bs_prof::alloc::alloc_json().contains("attr.test.alloc"));
}
