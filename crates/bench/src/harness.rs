//! Standard world, dataset loading, and the shared classification
//! series used by the longitudinal figures.

use crate::cache;
use backscatter_core::prelude::*;
use std::time::Instant;

/// The world every experiment binary runs against. One fixed seed, so
/// every binary observes the same Internet.
pub fn standard_world() -> World {
    World::new(WorldConfig::default())
}

/// Build (or load from cache) a dataset at standard scale with the
/// canonical seed.
pub fn load_dataset(world: &World, id: DatasetId) -> BuiltDataset {
    let spec = DatasetSpec::paper(id, Scale::standard(), 1);
    let key = format!("{}-s1", id.name());
    if let Some(log) = cache::load_log(&key) {
        bs_telemetry::info!("bench", "{key}: using cached log"; records = log.len());
        return backscatter_core::datasets::build::assemble_with_log(world, spec, log);
    }
    bs_telemetry::info!("bench", "{key}: simulating (this can take minutes for long datasets)…");
    let t0 = Instant::now();
    let built = build_dataset(world, spec);
    bs_telemetry::info!(
        "bench",
        "{key}: simulated";
        contacts = built.stats.contacts,
        records = built.log.len(),
        secs = format!("{:.0}", t0.elapsed().as_secs_f64()),
    );
    cache::store_log(&key, &built.log);
    built
}

/// Run (or load from cache) the standard per-window classification of a
/// dataset: curation on window 0, daily retraining, RF with majority
/// voting. This is the series behind Table V and Figs. 8–15.
pub fn classification_series(world: &World, built: &BuiltDataset) -> Vec<WindowClassification> {
    let key = format!("{}-s1-rf", built.spec.id.name());
    if let Some(series) = cache::load_series(&key) {
        bs_telemetry::info!("bench", "{key}: using cached classification series");
        return series;
    }
    bs_telemetry::info!("bench", "{key}: classifying"; windows = built.windows().len());
    let t0 = Instant::now();
    let mut pipeline = DatasetPipeline::default();
    let n = built.windows().len();
    if n > 6 {
        // Long feeds get the paper's recurring expert curation: three
        // dates spread over the span, merged into one labeled set.
        pipeline.curation_windows = vec![0, n / 3, 2 * n / 3];
    }
    let run = pipeline.run(world, built);
    bs_telemetry::info!(
        "bench",
        "{key}: classified";
        secs = format!("{:.0}", t0.elapsed().as_secs_f64()),
    );
    cache::store_series(&key, &run.windows);
    run.windows
}

/// The six case-study roles of the paper's §IV-A (Fig. 3 / Table II).
pub const CASE_STUDIES: [&str; 6] = ["scan-icmp", "scan-ssh", "ad-track", "cdn", "mail", "spam"];

/// Select the paper's six case-study originators from a built dataset:
/// the largest-footprint representative of each role. Returns
/// `(case name, features)` pairs; roles with no analyzable
/// representative are skipped.
pub fn case_studies(
    world: &World,
    built: &BuiltDataset,
) -> Vec<(&'static str, OriginatorFeatures)> {
    use backscatter_core::netsim::types::ContactKind;
    let window = built.windows()[0];
    let feats = built.features_for_window(world, window, &FeatureConfig::default());
    let by_ip: std::collections::BTreeMap<_, _> =
        feats.iter().map(|f| (f.originator, f.clone())).collect();

    let mut picks: std::collections::BTreeMap<&'static str, OriginatorFeatures> =
        std::collections::BTreeMap::new();
    let mut consider = |name: &'static str, f: &OriginatorFeatures| {
        let better = picks.get(name).map(|cur| f.querier_count > cur.querier_count).unwrap_or(true);
        if better {
            picks.insert(name, f.clone());
        }
    };
    for p in built.scenario.profiles() {
        let Some(f) = by_ip.get(&p.originator) else {
            continue;
        };
        let case = match p.class {
            ApplicationClass::Scan => {
                if p.kinds.contains(&ContactKind::ProbeIcmp) {
                    "scan-icmp"
                } else if p.kinds == vec![ContactKind::ProbeTcp(22)] {
                    "scan-ssh"
                } else {
                    continue;
                }
            }
            ApplicationClass::AdTracker => "ad-track",
            ApplicationClass::Cdn => "cdn",
            ApplicationClass::Mail => "mail",
            ApplicationClass::Spam => "spam",
            _ => continue,
        };
        consider(case, f);
    }
    CASE_STUDIES.iter().filter_map(|name| picks.get(name).map(|f| (*name, f.clone()))).collect()
}

/// Ground-truth (oracle) classification series: the same windows, but
/// labeled from the scenario's ground truth instead of the classifier.
/// Used where the paper itself uses curated labels (Figs. 5–6).
pub fn truth_series(world: &World, built: &BuiltDataset) -> Vec<WindowClassification> {
    let config = FeatureConfig::default();
    built
        .windows()
        .iter()
        .enumerate()
        .map(|(i, window)| {
            let feats = built.features_for_window(world, *window, &config);
            let truth = built.truth_for_window(*window);
            let entries = feats
                .iter()
                .filter_map(|f| {
                    truth.get(&f.originator).map(|class| ClassifiedOriginator {
                        originator: f.originator,
                        queriers: f.querier_count,
                        class: *class,
                    })
                })
                .collect();
            WindowClassification { window: i, entries }
        })
        .collect()
}

/// Build an ML training dataset from one or more curation dates: each
/// date contributes its curated examples *with that date's feature
/// vectors* (the paper's M-sampled protocol merges three such dates).
/// Duplicate originators keep their first curation.
pub fn multi_date_training_data(
    world: &World,
    built: &BuiltDataset,
    curation_windows: &[usize],
    per_class_cap: usize,
) -> backscatter_core::ml::Dataset {
    use backscatter_core::classify::pipeline::feature_map;
    use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
    use std::collections::BTreeSet;

    let windows = built.windows();
    let mut data = backscatter_core::ml::Dataset::new(
        backscatter_core::sensor::FeatureVector::names(),
        ApplicationClass::all_names(),
    );
    let mut seen: BTreeSet<std::net::Ipv4Addr> = BTreeSet::new();
    for &cw in curation_windows {
        let Some(window) = windows.get(cw) else { continue };
        let feats = built.features_for_window(world, *window, &FeatureConfig::default());
        let truth = built.truth_for_window(*window);
        let labeled = LabeledSet::curate(&truth, &feats, per_class_cap);
        let fmap = feature_map(&feats);
        let part = ClassifierPipeline::to_dataset(
            &LabeledSet {
                examples: labeled
                    .examples
                    .into_iter()
                    .filter(|e| seen.insert(e.originator))
                    .collect(),
            },
            &fmap,
        );
        for s in part.samples {
            data.push(s);
        }
    }
    data
}

/// Driver shared by the Fig. 5 / Fig. 6 binaries: curate a labeled set
/// at the midpoint of B-multi-year, then count how many of its benign
/// (or malicious) examples re-appear in each weekly window.
pub fn persistence_figure(malicious: bool) {
    use backscatter_core::analysis::churn::persistence_series;
    use backscatter_core::classify::LabeledSet;

    let world = standard_world();
    let built = load_dataset(&world, DatasetId::BMultiYear);
    let series = truth_series(&world, &built);
    let curation_window = series.len() / 2;

    // Curate at the midpoint, like the paper's 2014-04-28..30 pass.
    let windows = built.windows();
    let feats =
        built.features_for_window(&world, windows[curation_window], &FeatureConfig::default());
    let truth = built.truth_for_window(windows[curation_window]);
    let labeled = LabeledSet::curate(&truth, &feats, 140);
    let pairs: Vec<_> = labeled.examples.iter().map(|e| (e.originator, e.class)).collect();

    let kind = if malicious { "malicious" } else { "benign" };
    crate::table::heading(
        &format!(
            "Fig. {}: re-appearing {kind} labeled examples over time",
            if malicious { 6 } else { 5 }
        ),
        "Figures 5-6 / \u{a7}V-A",
    );
    println!("curation at week {curation_window} of {}", series.len());
    println!("# week\tre-appearing {kind} examples");
    let persistence = persistence_series(&series, &pairs, malicious);
    for (w, n) in &persistence {
        println!("{w}\t{n}");
    }

    // Quantify the decay rate after curation.
    let at =
        |offset: usize| persistence.get(curation_window + offset).map(|(_, n)| *n).unwrap_or(0);
    let peak = at(0).max(1);
    println!(
        "# retention after curation: +4 weeks {:.0}%, +12 weeks {:.0}%, +24 weeks {:.0}%",
        100.0 * at(4) as f64 / peak as f64,
        100.0 * at(12) as f64 / peak as f64,
        100.0 * at(24) as f64 / peak as f64,
    );
}
