//! Plain-text table and series printers.

/// Print a header like `== Table III: ... ==` with a provenance note.
pub fn heading(what: &str, paper_ref: &str) {
    println!();
    println!("== {what} ==");
    println!(
        "   (reproduces {paper_ref}; shapes comparable, absolute numbers are simulator-scale)"
    );
}

/// Print a fixed-width table: a header row then data rows. Column
/// widths adapt to content.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row arity must match header");
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    for r in rows {
        fmt_row(r);
    }
}

/// Print an `(x, y)` series, one point per line, for plotting.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("# series: {name}");
    for (x, y) in points {
        println!("{x}\t{y}");
    }
}

/// Format a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "hello".into()], vec!["22".into(), "x".into()]],
        );
        print_series("s", &[(1.0, 2.0)]);
        heading("Table X", "§0");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(0.5), "0.50");
    }
}
