//! The shared performance-measurement body behind `perf_snapshot`
//! (record a baseline) and `perf_gate` (compare a fresh run against
//! the committed baseline).
//!
//! [`measure_all`] runs the smoke-scale JP-ditl pipeline end to end
//! under four telemetry regimes (disabled, sequential, traced,
//! parallel), times raw ingest throughput (fast path vs retained
//! reference, batch and streaming), and times the ML fast paths vs
//! their references — asserting the determinism/equivalence contracts
//! throughout — then publishes every number as a `bench.*` gauge in
//! the global registry. `perf_snapshot` writes that registry to
//! `BENCH_pipeline.json`; `perf_gate` diffs it against the committed
//! copy.

use backscatter_core::dns::Rcode;
use backscatter_core::netsim::log::{QueryLog, QueryLogRecord};
use backscatter_core::prelude::*;
use backscatter_core::sensor::ingest::Observations;
use backscatter_core::sensor::{ReferenceStreamingSensor, StreamConfig, StreamingSensor};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::time::Instant;

/// Records in the synthetic ingest-throughput log.
const INGEST_RECORDS: usize = 200_000;
/// Time span the synthetic log covers, in seconds.
const INGEST_SPAN_SECS: u64 = 20_000;

/// Where the committed baseline lives: `BENCH_pipeline.json` at the
/// workspace root.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the workspace root")
        .join("BENCH_pipeline.json")
}

/// Summary facts from one [`measure_all`] run, beyond what lands in
/// the registry gauges.
#[derive(Debug, Clone)]
pub struct MeasureSummary {
    /// Total originators classified (summed over windows).
    pub classified: usize,
    /// Sequential (1-thread) pipeline wall time, milliseconds.
    pub wall_ms_sequential: i64,
    /// Parallel (default-width) pipeline wall time, milliseconds.
    pub wall_ms_parallel: i64,
    /// Resolved worker-pool width of the parallel run.
    pub threads: usize,
}

/// Storm-shaped synthetic log (many one-shot originators, few queriers
/// each) from a fixed-seed LCG — the workload that motivated the
/// `bs-fastmap` fast path, identical on every run.
fn ingest_log() -> QueryLog {
    let mut state: u64 = 0x5EED_CAFE;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    let mut log = QueryLog::new();
    for i in 0..INGEST_RECORDS {
        let o = next() as u32 % 60_000;
        let q = next() as u32 % 4_000;
        log.push(QueryLogRecord {
            time: SimTime(i as u64 * INGEST_SPAN_SECS / INGEST_RECORDS as u64),
            querier: Ipv4Addr::from(0x0A00_0000 | q),
            originator: Ipv4Addr::from(0xC000_0000 | o),
            rcode: Rcode::NoError,
        });
    }
    log
}

/// Records/second over one timed run of `f`.
fn rps<T>(records: usize, f: impl FnOnce() -> T) -> (i64, T) {
    let t0 = Instant::now();
    let out = f();
    let secs = t0.elapsed().as_secs_f64();
    ((records as f64 / secs.max(1e-9)) as i64, out)
}

fn run_pipeline(world: &World) -> Vec<usize> {
    let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7);
    let built = build_dataset(world, spec);
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    let run = pipeline.run(world, &built);
    run.windows.iter().map(|w| w.entries.len()).collect()
}

/// Ingest throughput, fast path vs retained reference, batch and
/// streaming (the streaming config keeps the table under pressure so
/// admission + eviction are on the measured path). Asserts the fast
/// path's output equals the reference's before recording anything.
fn ingest_throughput() -> [(&'static str, i64); 5] {
    let log = ingest_log();
    let end = SimTime(INGEST_SPAN_SECS + 1);
    let dedup = SimDuration::from_secs(30);
    let cfg = StreamConfig {
        window: SimDuration::from_secs(INGEST_SPAN_SECS + 1),
        max_originators: 20_000,
        admission_queries: 2,
        ..Default::default()
    };

    let (batch_fast_rps, fast_batch) = rps(log.len(), || {
        Observations::ingest_with_dedup(&log, SimTime::ZERO, end, dedup).originator_count()
    });
    let (batch_ref_rps, ref_batch) = rps(log.len(), || {
        Observations::ingest_with_dedup_reference(&log, SimTime::ZERO, end, dedup)
            .originator_count()
    });
    assert_eq!(fast_batch, ref_batch, "batch fast path must match the reference");

    let (stream_fast_rps, fast_stream) = rps(log.len(), || {
        let mut s = StreamingSensor::new(cfg);
        let mut n = 0usize;
        for r in log.records() {
            if let Some(w) = s.push(*r) {
                n += w.observations.originator_count();
            }
        }
        n + s.finish().map_or(0, |w| w.observations.originator_count())
    });
    let (stream_ref_rps, ref_stream) = rps(log.len(), || {
        let mut s = ReferenceStreamingSensor::new(cfg);
        let mut n = 0usize;
        for r in log.records() {
            if let Some(w) = s.push(*r) {
                n += w.observations.originator_count();
            }
        }
        n + s.finish().map_or(0, |w| w.observations.originator_count())
    });
    assert_eq!(fast_stream, ref_stream, "streaming fast path must match the reference");

    [
        ("bench.ingest.records", log.len() as i64),
        ("bench.ingest.batch_fast_rps", batch_fast_rps),
        ("bench.ingest.batch_reference_rps", batch_ref_rps),
        ("bench.ingest.stream_fast_rps", stream_fast_rps),
        ("bench.ingest.stream_reference_rps", stream_ref_rps),
    ]
}

/// Sharded streaming ingest throughput at 1/2/4/8 lanes over the same
/// storm log, with the `bs-par` pool sized to the lane count — the
/// multi-core scaling curve. Before anything is recorded, every lane
/// count's output is asserted equal to the sequential single-shard
/// reference (the shard topology makes output lane-count invariant);
/// a parallel-efficiency gauge (`rps₄ / (4 × rps₁)`, in milli)
/// summarizes the curve for the perf gate. On a 1-core host the rps
/// gauges record honestly flat numbers and efficiency sits near 250.
fn scaling_throughput() -> Vec<(String, i64)> {
    use backscatter_core::sensor::{ReferenceShardedStreamingSensor, ShardedStreamingSensor};
    let log = ingest_log();
    let cfg = StreamConfig {
        window: SimDuration::from_secs(INGEST_SPAN_SECS + 1),
        max_originators: 20_000,
        admission_queries: 2,
        ..Default::default()
    };

    let mut reference = ReferenceShardedStreamingSensor::new(cfg);
    let mut expect = Vec::new();
    for r in log.records() {
        if let Some(w) = reference.push(*r) {
            expect.push(w);
        }
    }
    expect.extend(reference.finish());

    let mut gauges = Vec::new();
    let mut curve = Vec::new();
    for lanes in [1usize, 2, 4, 8] {
        backscatter_core::par::set_threads(lanes);
        let (rate, got) = rps(log.len(), || {
            let mut s = ShardedStreamingSensor::new(cfg, lanes);
            let mut out = Vec::new();
            for r in log.records() {
                if let Some(w) = s.push(*r) {
                    out.push(w);
                }
            }
            out.extend(s.finish());
            out
        });
        assert_eq!(
            got, expect,
            "{lanes}-lane sharded output must equal the sequential sharded reference"
        );
        curve.push(rate);
        gauges.push((format!("bench.ingest.scaling.shards{lanes}_rps"), rate));
    }
    backscatter_core::par::set_threads(0);
    // 1000 = perfect linear 1→4 scaling; 250 = no scaling at all.
    let efficiency = curve[2].saturating_mul(1000) / (4 * curve[0]).max(1);
    gauges.push(("bench.ingest.scaling.parallel_efficiency_milli".to_string(), efficiency));
    gauges
}

/// Profiler overhead on the streaming-ingest hot loop, the budget
/// proof for `--profile`: min-of-3 wall time with bs-prof idle (the
/// gating branches and counting allocator compiled in but profiling
/// off) and with the sampler live at 99 Hz, both as integer-percent
/// deltas against a just-measured baseline of the identical idle
/// configuration. The *disabled* delta is an A/B re-measure of the
/// same code, so it reads the run-to-run noise floor the always-on
/// gating hides in; the design budget is <1% disabled and <5% at
/// 99 Hz, and the asserts sit far looser (15% / 40%) only because
/// this gate also runs on 1-core shared CI hosts where scheduler
/// noise dwarfs both.
fn prof_overhead() -> [(&'static str, i64); 2] {
    let log = ingest_log();
    let cfg = StreamConfig {
        window: SimDuration::from_secs(INGEST_SPAN_SECS + 1),
        max_originators: 20_000,
        admission_queries: 2,
        ..Default::default()
    };
    let run = || {
        // Inert one-branch guard while profiling is off (the cost under
        // test); keeps the whole loop on-stack for the 99 Hz sampler.
        let _probe = backscatter_core::prof::stage("bench.prof.probe", 0);
        let mut s = StreamingSensor::new(cfg);
        let mut n = 0usize;
        for r in log.records() {
            if let Some(w) = s.push(*r) {
                n += w.observations.originator_count();
            }
        }
        n + s.finish().map_or(0, |w| w.observations.originator_count())
    };
    let time_min3 = |f: &dyn Fn() -> usize, expect: usize| -> i64 {
        let mut best = i64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let got = f();
            let ns = t0.elapsed().as_nanos() as i64;
            assert_eq!(got, expect, "profiling must not change ingest output");
            best = best.min(ns);
        }
        best
    };
    let pct = |measured: i64, base: i64| -> i64 {
        ((measured as i128 - base as i128) * 100 / base.max(1) as i128) as i64
    };

    let expect = run();
    let base_ns = time_min3(&run, expect);
    let disabled_ns = time_min3(&run, expect);

    assert!(backscatter_core::prof::start(99), "sampler must start for the overhead probe");
    let hz99_ns = time_min3(&run, expect);
    backscatter_core::prof::stop();
    let (busy, _, _, ticks) = backscatter_core::prof::sample_counts();
    assert!(ticks > 0, "the 99 Hz sampler must have ticked during the probe");
    assert!(busy > 0, "the sampler must have caught the ingest stage on-stack");
    backscatter_core::prof::reset();

    let disabled_pct = pct(disabled_ns, base_ns);
    let hz99_pct = pct(hz99_ns, base_ns);
    assert!(
        disabled_pct < 15,
        "idle profiler overhead {disabled_pct}% blows even the noise-padded gate \
         (design budget <1%)"
    );
    assert!(
        hz99_pct < 40,
        "99 Hz profiler overhead {hz99_pct}% blows even the noise-padded gate \
         (design budget <5%)"
    );
    [("bench.prof.overhead_pct.disabled", disabled_pct), ("bench.prof.overhead_pct.hz99", hz99_pct)]
}

/// ML training/prediction throughput, columnar fast paths vs retained
/// references, on a fixed-seed dataset shaped like one B-root window
/// (≈600 originators × 22 features × 12 classes). Runs single-threaded
/// (the caller pins the pool) so the ratio isolates the algorithmic
/// speedup. Asserts bit-identical models before recording anything.
fn ml_throughput() -> [(&'static str, i64); 8] {
    use backscatter_core::ml::{Dataset, Forest, ForestParams, Sample, Svm, SvmParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const ROWS: usize = 2400;
    let mut rng = StdRng::seed_from_u64(0xB007);
    let mut data = Dataset::new(
        (0..22).map(|i| format!("f{i}")).collect(),
        (0..12).map(|i| format!("c{i}")).collect(),
    );
    for _ in 0..ROWS {
        let label = rng.gen_range(0..12usize);
        let features: Vec<f64> = (0..22)
            .map(|j| {
                let signal = if j % 12 == label { 1.0 } else { 0.0 };
                signal + rng.gen_range(-0.3..0.3)
            })
            .collect();
        data.push(Sample { features, label });
    }

    let fp = ForestParams { n_trees: 30, ..ForestParams::default() };
    let (forest_fast_rps, fast_forest) = rps(ROWS, || Forest::fit(&data, &fp, 7));
    let (forest_ref_rps, ref_forest) = rps(ROWS, || Forest::fit_reference(&data, &fp, 7));
    assert_eq!(
        fast_forest.to_text(),
        ref_forest.to_text(),
        "columnar forest must persist byte-identically to the reference"
    );

    let sp = SvmParams { max_iters: 30, ..SvmParams::default() };
    let (svm_fast_rps, fast_svm) = rps(ROWS, || Svm::fit(&data, &sp, 7));
    let (svm_ref_rps, ref_svm) = rps(ROWS, || Svm::fit_reference(&data, &sp, 7));
    assert_eq!(fast_svm, ref_svm, "Gram-cached SVM must equal the reference bit for bit");

    let xs: Vec<Vec<f64>> = data.samples.iter().map(|s| s.features.clone()).collect();
    let (predict_lanes_rps, lanes) = rps(xs.len(), || fast_forest.predict_all(&xs));
    let (predict_batch_rps, batch) = rps(xs.len(), || fast_forest.predict_all_rows(&xs));
    let (predict_scalar_rps, scalar) =
        rps(xs.len(), || xs.iter().map(|x| fast_forest.predict(x)).collect::<Vec<_>>());
    assert_eq!(lanes, batch, "lane prediction must equal the row-batch reference");
    assert_eq!(batch, scalar, "batch prediction must equal per-row prediction");

    [
        ("bench.ml.rows", ROWS as i64),
        ("bench.ml.forest_fit_fast_rps", forest_fast_rps),
        ("bench.ml.forest_fit_reference_rps", forest_ref_rps),
        ("bench.ml.svm_fit_fast_rps", svm_fast_rps),
        ("bench.ml.svm_fit_reference_rps", svm_ref_rps),
        ("bench.ml.forest_predict_lanes_rps", predict_lanes_rps),
        ("bench.ml.forest_predict_batch_rps", predict_batch_rps),
        ("bench.ml.forest_predict_scalar_rps", predict_scalar_rps),
    ]
}

/// Static-feature matcher throughput on a deterministic mixed corpus of
/// reverse names (rule hits, suffix hits, near-misses, unclassified),
/// packed fast matcher vs the byte-at-a-time reference. Asserts
/// identical classifications before recording anything.
fn static_features_throughput() -> [(&'static str, i64); 2] {
    use backscatter_core::dns::DomainName;
    use backscatter_core::sensor::static_features::{
        classify_name_with_order, classify_name_with_order_reference, MatchOrder,
    };

    const NAMES: usize = 20_000;
    let heads = [
        "mail",
        "mailing",
        "ns1-cache",
        "host1-2-3-4",
        "customer-9",
        "newsletter7",
        "wallet",
        "zxqv77",
        "www",
        "ironport2",
        "a96-7-4-2",
    ];
    let tails = ["example.com", "deploy.akamai.sim", "compute.amazonaws.sim", "bigisp.net"];
    let mut state: u64 = 0xFEA7_0001;
    let names: Vec<DomainName> = (0..NAMES)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let h = heads[(state >> 16) as usize % heads.len()];
            let t = tails[(state >> 40) as usize % tails.len()];
            DomainName::parse(&format!("{h}.{t}")).expect("corpus names are valid")
        })
        .collect();

    let classify_all = |f: fn(&DomainName, MatchOrder) -> _| {
        names.iter().map(|n| f(n, MatchOrder::LeftmostFirst) as usize).collect::<Vec<_>>()
    };
    let (fast_rps, fast) = rps(NAMES, || classify_all(classify_name_with_order));
    let (ref_rps, reference) = rps(NAMES, || classify_all(classify_name_with_order_reference));
    assert_eq!(fast, reference, "packed matcher must equal the byte-at-a-time reference");

    [
        ("bench.sensor.static_features_rps", fast_rps),
        ("bench.sensor.static_features_reference_rps", ref_rps),
    ]
}

/// Deterministic querier metadata for the extraction benchmarks:
/// reverse names synthesized (and re-parsed) per call across every
/// `NameOutcome` variant and several keyword categories, AS and
/// country derived from address bits with `None` gaps. The per-call
/// allocation is the point — resolution is the expensive step the
/// qmeta plane memoizes, so the provider must cost something.
pub struct SynthQuerierInfo;

impl backscatter_core::sensor::QuerierInfo for SynthQuerierInfo {
    fn querier_name(&self, a: Ipv4Addr) -> backscatter_core::netsim::types::NameOutcome {
        use backscatter_core::dns::DomainName;
        use backscatter_core::netsim::types::NameOutcome;
        let x = u32::from(a);
        let name = |s: String| NameOutcome::Name(DomainName::parse(&s).expect("valid name"));
        match x % 7 {
            0 => NameOutcome::NxDomain,
            1 => NameOutcome::Unreachable,
            2 => name(format!("mail{}.example.com", x % 50)),
            3 => name(format!("ns{}.isp.net", x % 20)),
            4 => name(format!("host-{}-{}.bigisp.net", (x >> 8) & 0xff, x & 0xff)),
            5 => name(format!("a{}.deploy.akamai.sim", x % 97)),
            _ => name(format!("zx{}.example.org", x % 1000)),
        }
    }
    fn querier_as(&self, a: Ipv4Addr) -> Option<backscatter_core::netsim::types::AsId> {
        let x = u32::from(a);
        (x % 11 != 0).then_some(backscatter_core::netsim::types::AsId((x >> 6) % 300))
    }
    fn querier_country(&self, a: Ipv4Addr) -> Option<backscatter_core::netsim::types::CountryCode> {
        let x = u32::from(a);
        (x % 13 != 0).then(|| {
            backscatter_core::netsim::types::CountryCode([
                b'a' + ((x >> 3) % 26) as u8,
                b'a' + ((x >> 9) % 26) as u8,
            ])
        })
    }
}

/// A high-overlap extraction workload: `originators` footprints drawn
/// from a shared pool of `pool` queriers — the regime the paper
/// describes (shared resolver infrastructure) and the one the qmeta
/// plane targets. Returns the ingested window.
pub fn overlap_observations(originators: u32, footprint: usize, pool: u32) -> Observations {
    let mut state: u64 = 0xE17A_00C7;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    let mut log = QueryLog::new();
    let mut t = 0u64;
    for o in 0..originators {
        for _ in 0..footprint {
            let q = next() as u32 % pool;
            t += 1;
            log.push(QueryLogRecord {
                time: SimTime(t % 50_000),
                querier: Ipv4Addr::from(0x0A00_0000 | q),
                originator: Ipv4Addr::from(0xC000_0000 | o),
                rcode: Rcode::NoError,
            });
        }
    }
    Observations::ingest(&log, SimTime::ZERO, SimTime(50_001))
}

/// Feature-extraction throughput, qmeta-table fast path vs the
/// retained per-pair reference, plus the warm-cache path (second
/// window over the same querier population). Denominated in
/// (originator, querier) **pairs** — the Σ-footprints unit the
/// reference's work scales with — so the fast/reference ratio reads
/// directly as the O(Σ footprints) → O(unique queriers) win. Asserts
/// both fast paths' output equals the reference's before recording
/// anything. Runs single-threaded (the caller pins the pool) so the
/// ratio isolates the algorithmic speedup.
fn extract_throughput() -> [(&'static str, i64); 4] {
    use backscatter_core::sensor::qmeta::QuerierMetaCache;
    use backscatter_core::sensor::{
        extract_from_observations, extract_from_observations_reference, extract_with_meta_cache,
    };

    let obs = overlap_observations(1_500, 80, 3_000);
    let config = FeatureConfig { min_queriers: 1, top_n: None };
    let pairs: usize = obs.per_originator.values().map(|o| o.querier_count()).sum();

    let (fast_rps, fast) =
        rps(pairs, || extract_from_observations(&obs, &SynthQuerierInfo, &config));
    let (reference_rps, reference) =
        rps(pairs, || extract_from_observations_reference(&obs, &SynthQuerierInfo, &config));
    assert_eq!(fast, reference, "fast extraction must equal the per-pair reference");

    let mut cache = QuerierMetaCache::default();
    let cold = extract_with_meta_cache(&obs, &SynthQuerierInfo, &config, Some(&mut cache));
    assert_eq!(cold, reference, "cold-cache extraction must equal the reference");
    let (warm_rps, warm) =
        rps(pairs, || extract_with_meta_cache(&obs, &SynthQuerierInfo, &config, Some(&mut cache)));
    assert_eq!(warm, reference, "warm-cache extraction must be cache-invariant");
    assert!(cache.hits() > 0, "the warm run must have hit the cache");

    [
        ("bench.sensor.extract_pairs", pairs as i64),
        ("bench.sensor.extract_fast_rps", fast_rps),
        ("bench.sensor.extract_reference_rps", reference_rps),
        ("bench.sensor.extract_warm_cache_rps", warm_rps),
    ]
}

/// Run the full measurement suite and publish every number as a
/// `bench.*` gauge in the (enabled, freshly reset) global registry.
/// Panics if any fast path diverges from its reference or any run
/// classifies differently — the determinism contract gates every
/// recorded number.
pub fn measure_all() -> MeasureSummary {
    let world = backscatter_core::netsim::world::World::new(WorldConfig::default());

    // Baseline: telemetry compiled in but disabled (the default state).
    backscatter_core::telemetry::disable();

    // Ingest throughput first, while telemetry is off, so the sensor's
    // window-flush counters from the synthetic log don't leak into the
    // pipeline snapshot below.
    let ingest_gauges = ingest_throughput();

    // ML throughput, also while telemetry is off, pinned to one thread
    // so the fast/reference ratios measure the algorithms, not the
    // pool. Restore the default width afterwards.
    backscatter_core::par::set_threads(1);
    let ml_gauges = ml_throughput();
    backscatter_core::par::set_threads(0);

    // Static-feature matcher throughput (single-threaded by nature:
    // one tight loop over the name corpus).
    let static_gauges = static_features_throughput();

    // Extraction throughput, also pinned to one thread: both paths
    // parallelize over originators identically, so the single-thread
    // ratio is the pure O(Σ footprints) → O(unique) algorithmic win.
    backscatter_core::par::set_threads(1);
    let extract_gauges = extract_throughput();
    backscatter_core::par::set_threads(0);

    // Sharded-ingest scaling curve, still with telemetry off; sizes
    // the pool per lane count and restores the default width after.
    let scaling_gauges = scaling_throughput();

    // Profiler overhead probe, also with telemetry off: idle gating
    // cost and the 99 Hz sampling tax on the streaming hot loop.
    let prof_gauges = prof_overhead();

    let t0 = Instant::now();
    let classified_off = run_pipeline(&world);
    let off_ms = t0.elapsed().as_millis() as i64;

    // Sequential run: one thread, telemetry on.
    backscatter_core::telemetry::reset();
    backscatter_core::telemetry::enable();
    backscatter_core::par::set_threads(1);
    let t0 = Instant::now();
    let classified_seq = run_pipeline(&world);
    let seq_ms = t0.elapsed().as_millis() as i64;

    // Traced run: default width with the bs-trace flight recorder and
    // conservation ledger on — bounds the cost of `--trace` itself
    // (compare wall_ms_trace_enabled against wall_ms_enabled).
    backscatter_core::par::set_threads(0);
    backscatter_core::trace::enable();
    backscatter_core::trace::drain();
    backscatter_core::trace::ledger::reset();
    let t0 = Instant::now();
    let classified_traced = run_pipeline(&world);
    let traced_ms = t0.elapsed().as_millis() as i64;
    let trace_events = backscatter_core::trace::drain().len();
    assert!(
        backscatter_core::trace::ledger::verify().is_empty(),
        "traced run must balance the drop-accounting ledger"
    );
    backscatter_core::trace::ledger::reset();
    backscatter_core::trace::disable();

    // Parallel run: default width (BS_THREADS / all cores). This is
    // the snapshot that gets written, so its telemetry is the record.
    backscatter_core::telemetry::reset();
    let threads = backscatter_core::par::threads();
    let t0 = Instant::now();
    let classified_par = run_pipeline(&world);
    let par_ms = t0.elapsed().as_millis() as i64;

    assert_eq!(classified_par, classified_off, "telemetry must not change results");
    assert_eq!(
        classified_par, classified_seq,
        "parallel output must be bit-identical to sequential"
    );
    assert_eq!(classified_par, classified_traced, "tracing must not change results");

    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_disabled", off_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_enabled", par_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_sequential", seq_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_parallel", par_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.threads", threads as i64);
    // `--trace` overhead: same pipeline at the same width with the
    // flight recorder + ledger on vs off (wall_ms_enabled).
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_trace_enabled", traced_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.trace_events", trace_events as i64);
    // Ingest-engine throughput: records/second, `bs-fastmap` fast path
    // vs the retained BTree reference, batch and streaming.
    for (name, value) in ingest_gauges {
        backscatter_core::telemetry::gauge_set(name, value);
    }
    // ML throughput: rows/second trained (and rows/second classified),
    // `bs-mlcore` columnar fast paths vs the retained references.
    for (name, value) in ml_gauges {
        backscatter_core::telemetry::gauge_set(name, value);
    }
    // Static-feature matcher: names/second, packed `bs-simd` matcher
    // vs the byte-at-a-time reference, equivalence-asserted.
    for (name, value) in static_gauges {
        backscatter_core::telemetry::gauge_set(name, value);
    }
    // Feature extraction: (originator, querier) pairs/second, qmeta
    // metadata plane (cold and warm cache) vs the per-pair reference,
    // equivalence-asserted.
    for (name, value) in extract_gauges {
        backscatter_core::telemetry::gauge_set(name, value);
    }
    // Sharded-ingest scaling: streaming rps at 1/2/4/8 lanes plus the
    // 1→4 parallel-efficiency summary, equivalence-asserted per count.
    for (name, value) in &scaling_gauges {
        backscatter_core::telemetry::gauge_set(name, *value);
    }
    // Profiler overhead: integer-percent wall-time deltas on the
    // streaming hot loop, idle and at 99 Hz (budget: <1% / <5%).
    for (name, value) in prof_gauges {
        backscatter_core::telemetry::gauge_set(name, value);
    }

    MeasureSummary {
        classified: classified_par.iter().sum(),
        wall_ms_sequential: seq_ms,
        wall_ms_parallel: par_ms,
        threads,
    }
}
