//! Ablation: the keyword matcher's left-most-component preference
//! (§III-C: `mail.ns.example.com` is `mail`, not `ns`). The variant
//! scans components right to left instead, biasing toward suffixes.

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{repeated_holdout, Algorithm, ForestParams};
use backscatter_core::netsim::types::NameOutcome;
use backscatter_core::prelude::*;
use backscatter_core::sensor::ingest::Observations;
use backscatter_core::sensor::static_features::{
    classify_name_with_order, MatchOrder, StaticFeature,
};
use backscatter_core::sensor::{DynamicFeatures, FeatureVector};
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Re-extract features with a chosen match order (re-implements the
/// static step of the sensor on top of its public pieces).
fn extract_with_order(
    world: &World,
    built: &BuiltDataset,
    order: MatchOrder,
) -> Vec<backscatter_core::sensor::OriginatorFeatures> {
    let (start, end) = built.windows()[0];
    let obs = Observations::ingest(&built.log, start, end);
    let total_ases = obs.total_ases(world);
    let total_countries = obs.total_countries(world);
    backscatter_core::sensor::ingest::select_analyzable(&obs, 20, Some(10_000))
        .into_iter()
        .map(|o| {
            let mut counts = [0usize; 14];
            for q in &o.queriers {
                let f = match world.reverse_name(*q) {
                    NameOutcome::Name(n) => classify_name_with_order(&n, order),
                    NameOutcome::NxDomain => StaticFeature::NxDomain,
                    NameOutcome::Unreachable => StaticFeature::Unreach,
                };
                counts[f.index()] += 1;
            }
            let nq = o.querier_count().max(1) as f64;
            let mut static_fractions = [0.0; 14];
            for (frac, c) in static_fractions.iter_mut().zip(counts) {
                *frac = c as f64 / nq;
            }
            let dynamic =
                DynamicFeatures::compute(o, world, start, end, total_ases, total_countries);
            backscatter_core::sensor::OriginatorFeatures {
                originator: o.originator,
                querier_count: o.querier_count(),
                query_count: o.query_count(),
                features: FeatureVector { static_fractions, dynamic },
            }
        })
        .collect()
}

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let window = built.windows()[0];
    let truth = built.truth_for_window(window);

    heading(
        "Ablation: keyword match order (left-most vs right-most component)",
        "§III-C design choice",
    );
    let mut rows = Vec::new();
    let mut fractions: BTreeMap<&str, [f64; 2]> = BTreeMap::new();
    for (i, order) in
        [MatchOrder::LeftmostFirst, MatchOrder::RightmostFirst].into_iter().enumerate()
    {
        let feats = extract_with_order(&world, &built, order);
        // Aggregate static fractions over all originators.
        let mut agg = [0.0f64; 14];
        for f in &feats {
            for (a, v) in agg.iter_mut().zip(f.features.static_fractions) {
                *a += v;
            }
        }
        for f in StaticFeature::ALL {
            fractions.entry(f.name()).or_insert([0.0; 2])[i] =
                agg[f.index()] / feats.len().max(1) as f64;
        }
        let labeled = LabeledSet::curate(&truth, &feats, 140);
        let data = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));
        let rep = repeated_holdout(
            &Algorithm::RandomForest(ForestParams::default()),
            &data,
            0.6,
            15,
            0xFEA7,
        );
        rows.push(vec![
            match order {
                MatchOrder::LeftmostFirst => "leftmost-first (paper)".to_string(),
                MatchOrder::RightmostFirst => "rightmost-first".to_string(),
            },
            feats.len().to_string(),
            format!("{:.3}", rep.mean.accuracy),
            format!("{:.3}", rep.mean.f1),
        ]);
    }
    print_table(&["match order", "analyzable", "RF accuracy", "RF F1"], &rows);

    println!();
    println!("mean static fractions that shift (Δ ≥ 0.01):");
    for (name, [l, r]) in &fractions {
        if (l - r).abs() >= 0.01 {
            println!("  {name:20} leftmost {l:.3}  rightmost {r:.3}");
        }
    }
    let _ = Ipv4Addr::UNSPECIFIED; // silence unused-import lint paths on some toolchains
}
