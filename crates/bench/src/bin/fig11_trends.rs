//! Fig. 11: originators per week over the M-sampled span, total and per
//! class. Expected shape: a continuous background of scanning with a >25 %
//! scan bump in the weeks after the Heartbleed-style disclosure (~20 %
//! into the span) and a smaller one near the end (Shellshock).

use backscatter_core::analysis::trends::class_counts_per_window;
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MSampled);
    let series = classification_series(&world, &built);
    let counts = class_counts_per_window(&series);

    heading("Fig. 11: number of originators over time (M-sampled)", "Figure 11 / §VI-C");
    let shown = [
        ApplicationClass::Scan,
        ApplicationClass::Spam,
        ApplicationClass::Mail,
        ApplicationClass::Cdn,
    ];
    let mut header = vec!["week".to_string(), "total".to_string()];
    header.extend(shown.iter().map(|c| c.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = counts
        .iter()
        .map(|(w, per_class, total)| {
            let mut row = vec![w.to_string(), total.to_string()];
            row.extend(shown.iter().map(|c| per_class.get(c).copied().unwrap_or(0).to_string()));
            row
        })
        .collect();
    print_table(&header_refs, &rows);

    // Quantify the burst: scan count in surge weeks vs the baseline.
    let scan: Vec<usize> = counts
        .iter()
        .map(|(_, per_class, _)| per_class.get(&ApplicationClass::Scan).copied().unwrap_or(0))
        .collect();
    let n = scan.len();
    let surge_start = (n as f64 * 0.195) as usize;
    let window = &scan[surge_start..(surge_start + 3).min(n)];
    let baseline: Vec<usize> = scan.iter().take(surge_start.max(1)).copied().collect();
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
    println!();
    println!(
        "# scan baseline (pre-surge): {:.0}/week, surge weeks: {:.0}/week ({:+.0}%)",
        mean(&baseline),
        mean(window),
        100.0 * (mean(window) / mean(&baseline).max(1.0) - 1.0)
    );

    // Automatic burst detection (the "detection and response" use the
    // paper's introduction motivates).
    use backscatter_core::analysis::{detect_bursts, BurstConfig};
    let bursts = detect_bursts(&series, ApplicationClass::Scan, &BurstConfig::default());
    for b in &bursts {
        println!(
            "# detected scan burst: weeks {}..={} (peak {} vs baseline {:.0}, +{:.0}%)",
            b.start,
            b.end,
            b.peak,
            b.baseline,
            100.0 * b.relative_excess()
        );
    }
    if bursts.is_empty() {
        println!("# no scan bursts detected");
    }
}
