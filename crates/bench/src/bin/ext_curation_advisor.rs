//! Extension: the §V-F curation advisor in action.
//!
//! "Meanwhile labeled examples re-appearance count informs about next
//! expert curation." We curate once on B-multi-year, then let the
//! advisor watch label health week by week and report when it would
//! call the expert back — which should land about when Fig. 6 shows
//! malicious labels halving (a few weeks after curation), far earlier
//! than any benign-driven trigger.

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{advise, AdvisorConfig, CurationAdvice, LabelHealth, LabeledSet};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::BMultiYear);
    let windows = built.windows();
    let curation = windows.len() / 2;

    // Expert curates once, at the midpoint.
    let feats = built.features_for_window(&world, windows[curation], &FeatureConfig::default());
    let truth = built.truth_for_window(windows[curation]);
    let labels = LabeledSet::curate(&truth, &feats, 140);
    let counts = labels.class_counts();
    let malicious: usize = counts.iter().filter(|(c, _)| c.is_malicious()).map(|(_, n)| n).sum();
    let benign: usize = labels.len() - malicious;

    heading("Extension: curation advisor on B-multi-year", "§V-F recommendation");
    println!("curated at week {curation}: {malicious} malicious + {benign} benign examples");
    println!();

    let config = AdvisorConfig::default();
    let mut rows = Vec::new();
    let mut first_trigger = None;
    for (offset, window) in windows.iter().enumerate().skip(curation) {
        let fmap =
            feature_map(&built.features_for_window(&world, *window, &FeatureConfig::default()));
        let health = LabelHealth::measure(&labels, &fmap);
        let advice = advise(&health, &config);
        if advice != CurationAdvice::Healthy && first_trigger.is_none() {
            first_trigger = Some(offset - curation);
        }
        rows.push(vec![
            format!("+{}", offset - curation),
            format!("{}/{}", health.malicious_active, health.malicious_total),
            format!("{:.0}%", 100.0 * health.malicious_fraction()),
            format!("{}/{}", health.benign_active, health.benign_total),
            format!("{:.0}%", 100.0 * health.benign_fraction()),
            match advice {
                CurationAdvice::Healthy => "healthy".to_string(),
                CurationAdvice::RecurateMalicious => "RE-CURATE malicious".to_string(),
                CurationAdvice::RecurateAll => "RE-CURATE all".to_string(),
            },
        ]);
    }
    print_table(
        &["weeks since curation", "malicious active", "%", "benign active", "%", "advice"],
        &rows,
    );
    println!();
    match first_trigger {
        Some(w) => println!(
            "first re-curation call: +{w} weeks — consistent with Fig. 6's malicious\n\
             half-life of about a month; benign labels alone would have lasted months."
        ),
        None => println!("labels stayed healthy for the whole observed span."),
    }
}
