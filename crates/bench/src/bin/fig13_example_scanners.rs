//! Fig. 13: footprints of example scanners over time — a long-lived ssh
//! scanner, medium-lived scanners, and short burst scanners that appear
//! only around the disclosure event.

use backscatter_core::analysis::trends::originator_traces;
use backscatter_core::netsim::types::ContactKind;
use backscatter_core::prelude::*;
use bench::table::heading;
use bench::{classification_series, load_dataset, standard_world};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MSampled);
    let series = classification_series(&world, &built);

    // Index scan detections per originator: (weeks present, max footprint).
    let mut presence: BTreeMap<Ipv4Addr, Vec<usize>> = BTreeMap::new();
    for w in &series {
        for e in w.of_class(ApplicationClass::Scan) {
            presence.entry(e.originator).or_default().push(w.window);
        }
    }
    // Ground-truth port lookup from the scenario.
    let port_of = |ip: Ipv4Addr| -> String {
        for p in built.scenario.profiles() {
            if p.originator == ip {
                return match p.kinds.first() {
                    Some(ContactKind::ProbeTcp(p)) if p > &1000 => format!("tcp{p}"),
                    Some(ContactKind::ProbeTcp(p)) => format!("tcp{p}"),
                    Some(ContactKind::ProbeUdp(p)) => format!("udp{p}"),
                    Some(ContactKind::ProbeIcmp) => "icmp".to_string(),
                    _ => "multi".to_string(),
                };
            }
        }
        "?".to_string()
    };

    let n_weeks = series.len();
    let surge = (n_weeks as f64 * 0.195) as usize;
    // Choose: the longest-lived scanner; a second long-lived one; a
    // medium-lived one; and two burst scanners overlapping the surge.
    let mut by_longevity: Vec<(&Ipv4Addr, &Vec<usize>)> = presence.iter().collect();
    by_longevity.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
    let mut chosen: Vec<Ipv4Addr> = Vec::new();
    for (ip, _) in by_longevity.iter().take(2) {
        chosen.push(**ip);
    }
    if let Some((ip, _)) =
        by_longevity.iter().find(|(_, weeks)| weeks.len() >= 4 && weeks.len() <= n_weeks / 3)
    {
        chosen.push(**ip);
    }
    let bursts: Vec<Ipv4Addr> = by_longevity
        .iter()
        .rev()
        .filter(|(_, weeks)| {
            weeks.len() <= 4 && weeks.iter().any(|w| (surge..surge + 4).contains(w))
        })
        .take(2)
        .map(|(ip, _)| **ip)
        .collect();
    chosen.extend(bursts);

    heading("Fig. 13: example scanners over time (weekly footprints)", "Figure 13");
    let traces = originator_traces(&series, &chosen);
    for ip in &chosen {
        let Some(trace) = traces.get(ip) else { continue };
        println!();
        println!("# {} ({}) — present {} of {} weeks", ip, port_of(*ip), trace.len(), n_weeks);
        for (w, q) in trace {
            println!("{w}\t{q}");
        }
    }
}
