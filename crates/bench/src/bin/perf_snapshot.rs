//! Machine-readable pipeline performance snapshot.
//!
//! Runs the shared measurement suite ([`bench::perfsnap::measure_all`]
//! — pipeline wall times under four telemetry regimes, ingest
//! throughput fast-vs-reference, ML fast-vs-reference, every
//! equivalence contract asserted) and writes the resulting telemetry
//! registry to `BENCH_pipeline.json` at the workspace root. That file
//! is the committed baseline `perf_gate` compares fresh runs against.
//!
//! Gauge semantics (see `backscatter stats` for the full metric list):
//! `bench.pipeline.wall_ms_disabled` vs `wall_ms_enabled` bounds the
//! cost of telemetry itself; `wall_ms_sequential` vs `wall_ms_parallel`
//! records the sequential-vs-parallel trajectory (with `threads` the
//! parallel width); `wall_ms_trace_enabled` bounds the cost of
//! `--trace` (`trace_events` is the recorded event count, and the
//! ledger must verify balanced); `bench.ingest.*` and `bench.ml.*` are
//! records/second throughput pairs, fast path vs retained reference.
//!
//! ```bash
//! cargo run --release -p bench --bin perf_snapshot
//! ```

/// Counting allocator, as in the `backscatter` binary, so the
/// profiler-overhead probe measures the wrapper the shipped CLI
/// actually runs with.
#[global_allocator]
static ALLOC: backscatter_core::prof::CountingAlloc = backscatter_core::prof::CountingAlloc;

fn main() {
    let summary = bench::perfsnap::measure_all();

    let out = bench::perfsnap::baseline_path();
    let json = backscatter_core::telemetry::snapshot_json();
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");

    bs_telemetry::info!(
        "bench",
        "wrote {}", out.display();
        classified = summary.classified,
        wall_ms_sequential = summary.wall_ms_sequential,
        wall_ms_parallel = summary.wall_ms_parallel,
        threads = summary.threads,
    );
    print!("{json}");
}
