//! Machine-readable pipeline performance snapshot.
//!
//! Runs the smoke-scale JP-ditl pipeline end to end twice — once with
//! the telemetry registry disabled (the overhead baseline) and once
//! enabled — then writes the enabled run's full telemetry snapshot to
//! `BENCH_pipeline.json` at the workspace root. Future changes compare
//! their stage latencies (`core.curate` / `core.retrain` /
//! `core.classify`, nanosecond histograms) against this file, and the
//! two wall-clock gauges bound the cost of telemetry itself.
//!
//! ```bash
//! cargo run --release -p bench --bin perf_snapshot
//! ```

use backscatter_core::prelude::*;
use std::path::PathBuf;
use std::time::Instant;

fn run_pipeline(world: &World) -> usize {
    let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7);
    let built = build_dataset(world, spec);
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    let run = pipeline.run(world, &built);
    run.windows.iter().map(|w| w.entries.len()).sum()
}

fn main() {
    let world = backscatter_core::netsim::world::World::new(WorldConfig::default());

    // Baseline: telemetry compiled in but disabled (the default state).
    backscatter_core::telemetry::disable();
    let t0 = Instant::now();
    let classified_off = run_pipeline(&world);
    let off_ms = t0.elapsed().as_millis() as i64;

    // Instrumented run: everything counted and timed.
    backscatter_core::telemetry::reset();
    backscatter_core::telemetry::enable();
    let t0 = Instant::now();
    let classified_on = run_pipeline(&world);
    let on_ms = t0.elapsed().as_millis() as i64;
    assert_eq!(classified_on, classified_off, "telemetry must not change results");

    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_disabled", off_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_enabled", on_ms);

    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the workspace root")
        .join("BENCH_pipeline.json");
    let json = backscatter_core::telemetry::snapshot_json();
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");

    bs_telemetry::info!(
        "bench",
        "wrote {}", out.display();
        classified = classified_on,
        wall_ms_disabled = off_ms,
        wall_ms_enabled = on_ms,
    );
    print!("{json}");
}
