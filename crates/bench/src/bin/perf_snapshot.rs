//! Machine-readable pipeline performance snapshot.
//!
//! Runs the smoke-scale JP-ditl pipeline end to end three times — once
//! with the telemetry registry disabled (the overhead baseline), once
//! enabled, and once enabled but pinned to a single thread — then
//! writes the parallel run's full telemetry snapshot to
//! `BENCH_pipeline.json` at the workspace root. Future changes compare
//! their stage latencies (`core.curate` / `core.retrain` /
//! `core.classify`, nanosecond histograms) against this file; the
//! wall-clock gauges bound the cost of telemetry itself
//! (`wall_ms_disabled` vs `wall_ms_enabled`) and record the
//! sequential-vs-parallel trajectory (`wall_ms_sequential` vs
//! `wall_ms_parallel`, with `threads` saying how wide the parallel run
//! was). A fourth run turns on the `bs-trace` flight recorder and
//! conservation ledger (`wall_ms_trace_enabled` vs `wall_ms_enabled`
//! bounds the cost of `--trace`; `trace_events` is the recorded event
//! count, and the ledger must verify balanced). All runs must classify
//! identically — the process asserts the determinism contract before
//! writing anything.
//!
//! ```bash
//! cargo run --release -p bench --bin perf_snapshot
//! ```

use backscatter_core::prelude::*;
use std::path::PathBuf;
use std::time::Instant;

fn run_pipeline(world: &World) -> Vec<usize> {
    let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7);
    let built = build_dataset(world, spec);
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    let run = pipeline.run(world, &built);
    run.windows.iter().map(|w| w.entries.len()).collect()
}

fn main() {
    let world = backscatter_core::netsim::world::World::new(WorldConfig::default());

    // Baseline: telemetry compiled in but disabled (the default state).
    backscatter_core::telemetry::disable();
    let t0 = Instant::now();
    let classified_off = run_pipeline(&world);
    let off_ms = t0.elapsed().as_millis() as i64;

    // Sequential run: one thread, telemetry on.
    backscatter_core::telemetry::reset();
    backscatter_core::telemetry::enable();
    backscatter_core::par::set_threads(1);
    let t0 = Instant::now();
    let classified_seq = run_pipeline(&world);
    let seq_ms = t0.elapsed().as_millis() as i64;

    // Traced run: default width with the bs-trace flight recorder and
    // conservation ledger on — bounds the cost of `--trace` itself
    // (compare wall_ms_trace_enabled against wall_ms_enabled).
    backscatter_core::par::set_threads(0);
    backscatter_core::trace::enable();
    backscatter_core::trace::drain();
    backscatter_core::trace::ledger::reset();
    let t0 = Instant::now();
    let classified_traced = run_pipeline(&world);
    let traced_ms = t0.elapsed().as_millis() as i64;
    let trace_events = backscatter_core::trace::drain().len();
    assert!(
        backscatter_core::trace::ledger::verify().is_empty(),
        "traced run must balance the drop-accounting ledger"
    );
    backscatter_core::trace::ledger::reset();
    backscatter_core::trace::disable();

    // Parallel run: default width (BS_THREADS / all cores). This is
    // the snapshot that gets written, so its telemetry is the record.
    backscatter_core::telemetry::reset();
    let threads = backscatter_core::par::threads();
    let t0 = Instant::now();
    let classified_par = run_pipeline(&world);
    let par_ms = t0.elapsed().as_millis() as i64;

    assert_eq!(classified_par, classified_off, "telemetry must not change results");
    assert_eq!(
        classified_par, classified_seq,
        "parallel output must be bit-identical to sequential"
    );
    assert_eq!(classified_par, classified_traced, "tracing must not change results");

    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_disabled", off_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_enabled", par_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_sequential", seq_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_parallel", par_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.threads", threads as i64);
    // `--trace` overhead: same pipeline at the same width with the
    // flight recorder + ledger on vs off (wall_ms_enabled).
    backscatter_core::telemetry::gauge_set("bench.pipeline.wall_ms_trace_enabled", traced_ms);
    backscatter_core::telemetry::gauge_set("bench.pipeline.trace_events", trace_events as i64);

    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the workspace root")
        .join("BENCH_pipeline.json");
    let json = backscatter_core::telemetry::snapshot_json();
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");

    let classified: usize = classified_par.iter().sum();
    bs_telemetry::info!(
        "bench",
        "wrote {}", out.display();
        classified = classified,
        wall_ms_sequential = seq_ms,
        wall_ms_parallel = par_ms,
        threads = threads,
    );
    print!("{json}");
}
