//! Ablation: the analyzability threshold (≥ 20 unique queriers,
//! §III-B). Sweeping it trades coverage (how many originators can be
//! classified) against signal quality per originator.

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{repeated_holdout, Algorithm, ForestParams};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let window = built.windows()[0];
    let truth = built.truth_for_window(window);

    heading("Ablation: analyzability threshold (minimum unique queriers)", "§III-B design choice");
    let mut rows = Vec::new();
    for min_queriers in [5usize, 10, 20, 50, 100] {
        let feats =
            built.features_for_window(&world, window, &FeatureConfig { min_queriers, top_n: None });
        let labeled = LabeledSet::curate(&truth, &feats, 140);
        let data = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));
        let rep = repeated_holdout(
            &Algorithm::RandomForest(ForestParams::default()),
            &data,
            0.6,
            15,
            0x7823,
        );
        rows.push(vec![
            min_queriers.to_string(),
            feats.len().to_string(),
            labeled.len().to_string(),
            format!("{:.3}", rep.mean.accuracy),
            format!("{:.3}", rep.mean.f1),
        ]);
    }
    print_table(
        &["min queriers", "analyzable originators", "labeled", "RF accuracy", "RF F1"],
        &rows,
    );
    println!();
    println!("expected: lowering the threshold adds noisy small originators (more");
    println!("coverage, weaker per-example signal); raising it shrinks coverage.");
}
