//! Table VI: labeled ground-truth examples per class per dataset —
//! what expert curation (oracles ∩ top originators) yields.

use backscatter_core::classify::LabeledSet;
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    heading("Table VI: labeled ground-truth examples per class", "Table VI");
    let mut header: Vec<String> = vec!["dataset".to_string()];
    header.extend(ApplicationClass::ALL.iter().map(|c| c.name().to_string()));
    header.push("total".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for id in [DatasetId::JpDitl, DatasetId::BPostDitl, DatasetId::MDitl, DatasetId::MSampled] {
        let built = load_dataset(&world, id);
        // Long feeds merge three curation dates, like the paper's
        // M-sampled protocol (and like table3_accuracy).
        let n = built.windows().len();
        let curations: Vec<usize> = if n > 6 { vec![0, n / 3, 2 * n / 3] } else { vec![0] };
        let mut labeled = LabeledSet::default();
        for &cw in &curations {
            let window = built.windows()[cw];
            let feats = built.features_for_window(&world, window, &FeatureConfig::default());
            let truth = built.truth_for_window(window);
            labeled.merge(&LabeledSet::curate(&truth, &feats, 140));
        }
        let counts = labeled.class_counts();
        let mut row = vec![id.name().to_string()];
        row.extend(
            ApplicationClass::ALL
                .iter()
                .map(|c| counts.get(c).map(|n| n.to_string()).unwrap_or_else(|| "-".to_string())),
        );
        row.push(labeled.len().to_string());
        rows.push(row);
    }
    print_table(&header_refs, &rows);
}
