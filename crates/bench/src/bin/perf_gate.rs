//! Performance-regression gate.
//!
//! Re-runs the shared measurement suite
//! ([`bench::perfsnap::measure_all`]) and compares every `bench.*`
//! gauge against the committed baseline `BENCH_pipeline.json`:
//!
//! * `*_rps` throughput gauges regress when the fresh value drops
//!   below **80%** of the baseline;
//! * `*wall_ms*` latency gauges regress when the fresh value exceeds
//!   **120%** of the baseline;
//! * a baseline of `-1` means *unmeasured* — the gauge is reported but
//!   not gated (the committed file starts life as a placeholder on
//!   hosts that can't produce stable numbers, e.g. single-core CI);
//! * everything else (`records`, `rows`, `threads`, `trace_events`,
//!   `prof.overhead_pct`) is informational.
//!
//! Every row carries the signed percent change vs the baseline, so a
//! run's drift is readable at a glance even when nothing regressed.
//!
//! Exits non-zero iff at least one gauge regressed, so CI can wire it
//! in as a hard gate once a real baseline is committed:
//!
//! ```bash
//! cargo run --release -p bench --bin perf_gate
//! ```
//!
//! Refresh the baseline with `perf_snapshot` on a quiet multi-core
//! host and commit the new `BENCH_pipeline.json`.

use std::process::ExitCode;

/// Counting allocator, as in the `backscatter` binary, so the
/// profiler-overhead probe measures the wrapper the shipped CLI
/// actually runs with.
#[global_allocator]
static ALLOC: backscatter_core::prof::CountingAlloc = backscatter_core::prof::CountingAlloc;

/// Throughput gauges may lose at most this fraction vs the baseline.
const RPS_FLOOR: f64 = 0.8;
/// Latency gauges may gain at most this fraction vs the baseline.
const WALL_MS_CEIL: f64 = 1.2;

/// What the gate decided about one gauge.
enum Verdict {
    Pass,
    Regressed,
    Unmeasured,
    Info,
}

fn judge(name: &str, base: f64, new: f64) -> Verdict {
    if base < 0.0 {
        return Verdict::Unmeasured;
    }
    if name.ends_with("_rps") {
        if new < base * RPS_FLOOR {
            return Verdict::Regressed;
        }
        return Verdict::Pass;
    }
    if name.contains("wall_ms") {
        if new > base * WALL_MS_CEIL {
            return Verdict::Regressed;
        }
        return Verdict::Pass;
    }
    Verdict::Info
}

fn main() -> ExitCode {
    let path = bench::perfsnap::baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline = match backscatter_core::trace::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf_gate: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(base_gauges) = baseline.get("gauges").and_then(|g| g.as_object()) else {
        eprintln!("perf_gate: {} has no \"gauges\" object", path.display());
        return ExitCode::FAILURE;
    };

    println!("perf_gate: measuring (baseline {})…", path.display());
    let summary = bench::perfsnap::measure_all();
    let fresh = backscatter_core::telemetry::snapshot();

    // Signed percent change vs the baseline; "-" when the baseline is
    // a placeholder or zero (a delta against -1 or 0 is meaningless).
    let delta = |base: f64, new: f64| -> String {
        if base > 0.0 {
            format!("{:+.1}%", (new - base) / base * 100.0)
        } else {
            "-".to_string()
        }
    };
    let mut regressions = 0usize;
    let mut gated = 0usize;
    let mut unmeasured = 0usize;
    println!("{:<40} {:>12} {:>12} {:>8}  verdict", "gauge", "baseline", "fresh", "delta");
    for (name, base_value) in base_gauges {
        if !name.starts_with("bench.") {
            continue;
        }
        let base = base_value.as_f64().unwrap_or(-1.0);
        let Some(new) = fresh.gauges.get(name).copied() else {
            println!("{name:<40} {base:>12.0} {:>12} {:>8}  REGRESSED (gauge vanished)", "-", "-");
            regressions += 1;
            continue;
        };
        let new = new as f64;
        let d = delta(base, new);
        match judge(name, base, new) {
            Verdict::Pass => {
                gated += 1;
                println!("{name:<40} {base:>12.0} {new:>12.0} {d:>8}  ok");
            }
            Verdict::Regressed => {
                regressions += 1;
                let bound = if name.ends_with("_rps") {
                    format!("floor {:.0}", base * RPS_FLOOR)
                } else {
                    format!("ceil {:.0}", base * WALL_MS_CEIL)
                };
                println!("{name:<40} {base:>12.0} {new:>12.0} {d:>8}  REGRESSED ({bound})");
            }
            Verdict::Unmeasured => {
                unmeasured += 1;
                println!("{name:<40} {base:>12.0} {new:>12.0} {d:>8}  recorded (no baseline)");
            }
            Verdict::Info => {
                println!("{name:<40} {base:>12.0} {new:>12.0} {d:>8}  info");
            }
        }
    }
    println!(
        "perf_gate: {gated} gated, {unmeasured} unmeasured, {regressions} regressed \
         ({} classified, {} threads)",
        summary.classified, summary.threads
    );
    if regressions > 0 {
        eprintln!(
            "perf_gate: FAIL — {regressions} gauge(s) regressed past the \
             {:.0}%/{:.0}% bounds",
            RPS_FLOOR * 100.0,
            WALL_MS_CEIL * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("perf_gate: PASS");
    ExitCode::SUCCESS
}
