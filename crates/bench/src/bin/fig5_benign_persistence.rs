//! Fig. 5: re-appearing *benign* labeled examples over time around a
//! curation point. Expected shape: a peak at curation, then slow decay
//! (the paper sees ~10 % in a month, ~20 % over six months).

use bench::harness::persistence_figure;

fn main() {
    persistence_figure(false);
}
