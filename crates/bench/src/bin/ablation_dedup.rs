//! Ablation: the 30-second deduplication window (§III-C).
//!
//! The paper drops duplicate queries from the same querier within 30 s
//! "to avoid excessive skew of querier rate estimates". This ablation
//! turns the window off / widens it and measures the impact on the
//! queries-per-querier feature and on classification accuracy.

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{repeated_holdout, Algorithm, ForestParams};
use backscatter_core::prelude::*;
use backscatter_core::sensor::extract_from_observations;
use backscatter_core::sensor::ingest::Observations;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let (start, end) = built.windows()[0];
    let truth = built.truth_for_window((start, end));

    heading("Ablation: per-querier deduplication window", "§III-C design choice");
    let mut rows = Vec::new();
    for dedup_secs in [0u64, 30, 300, 1800] {
        let obs = Observations::ingest_with_dedup(
            &built.log,
            start,
            end,
            SimDuration::from_secs(dedup_secs),
        );
        let feats = extract_from_observations(&obs, &world, &FeatureConfig::default());
        let mean_qpq = feats.iter().map(|f| f.features.dynamic.queries_per_querier).sum::<f64>()
            / feats.len().max(1) as f64;
        let labeled = LabeledSet::curate(&truth, &feats, 140);
        let data = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));
        let rep = repeated_holdout(
            &Algorithm::RandomForest(ForestParams::default()),
            &data,
            0.6,
            15,
            0xDED,
        );
        rows.push(vec![
            if dedup_secs == 0 { "off".to_string() } else { format!("{dedup_secs}s") },
            feats.len().to_string(),
            format!("{mean_qpq:.2}"),
            format!("{:.3}", rep.mean.accuracy),
            format!("{:.3}", rep.mean.f1),
        ]);
    }
    print_table(
        &["dedup window", "analyzable", "mean queries/querier", "RF accuracy", "RF F1"],
        &rows,
    );
    println!();
    println!("expected: without dedup, queries/querier inflates; accuracy is broadly");
    println!("robust but the feature scale drifts (the paper dedups for stability).");
}
