//! Fig. 3: static features for the six case studies — the fraction of
//! each originator's queriers whose reverse names fall in each keyword
//! category, on JP-ditl.

use backscatter_core::prelude::*;
use backscatter_core::sensor::StaticFeature;
use bench::harness::case_studies;
use bench::table::{f3, heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let cases = case_studies(&world, &built);
    heading("Fig. 3: static features for case studies (JP-ditl)", "Figure 3");

    // Rows per feature, columns per case, like the paper's stacked bars.
    let mut header: Vec<&str> = vec!["static feature"];
    for (name, _) in &cases {
        header.push(name);
    }
    let mut rows = Vec::new();
    for feature in StaticFeature::ALL {
        let mut row = vec![feature.name().to_string()];
        for (_, f) in &cases {
            row.push(f3(f.features.static_fraction(feature)));
        }
        rows.push(row);
    }
    print_table(&header, &rows);

    println!();
    println!("footprints (unique queriers):");
    for (name, f) in &cases {
        println!("  {name:10} {} ({})", f.querier_count, f.originator);
    }
}
