//! Fig. 16 (appendix C): queriers per hour over the JP-ditl span for
//! the six case studies. Expected shape: diurnal cycles for ad-tracker,
//! cdn, and mail; flat automation for scan-ssh and spam.

use backscatter_core::prelude::*;
use backscatter_core::sensor::ingest::Observations;
use bench::harness::case_studies;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};
use std::collections::BTreeMap;

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let cases = case_studies(&world, &built);
    let window = built.windows()[0];
    let obs = Observations::ingest(&built.log, window.0, window.1);

    heading("Fig. 16: queriers per hour for case studies (JP-ditl)", "Figure 16 / Appendix C");
    let hours = (window.1.secs() - window.0.secs()).div_ceil(3600);
    let mut header: Vec<String> = vec!["hour".to_string()];
    header.extend(cases.iter().map(|(n, _)| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    // Per-case hourly unique-querier counts.
    let mut per_case: Vec<BTreeMap<u64, std::collections::BTreeSet<std::net::Ipv4Addr>>> =
        vec![BTreeMap::new(); cases.len()];
    for (i, (_, f)) in cases.iter().enumerate() {
        if let Some(o) = obs.per_originator.get(&f.originator) {
            for (t, q) in &o.queries {
                per_case[i].entry(t.secs() / 3600).or_default().insert(*q);
            }
        }
    }
    let rows: Vec<Vec<String>> = (0..hours)
        .map(|h| {
            let mut row = vec![h.to_string()];
            for case in &per_case {
                row.push(case.get(&h).map(|s| s.len()).unwrap_or(0).to_string());
            }
            row
        })
        .collect();
    print_table(&header_refs, &rows);

    // Quantify diurnality: coefficient of variation across hours.
    println!();
    println!("hourly coefficient of variation (higher = more diurnal):");
    for (i, (name, _)) in cases.iter().enumerate() {
        let counts: Vec<f64> =
            (0..hours).map(|h| per_case[i].get(&h).map(|s| s.len()).unwrap_or(0) as f64).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        println!("  {name:10} {cv:.2}");
    }
}
