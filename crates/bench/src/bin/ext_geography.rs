//! Extension: where the activity comes from — per-class geographic
//! distributions of classified originators at M-Root (the systematic
//! version of Tables VII/VIII's country annotations: "unreach (CN)",
//! "nxdom (PK)", and §VI-B's Chinese CDN observation).

use backscatter_core::analysis::geo::{concentration, geo_breakdown, top_countries};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MDitl);
    let series = classification_series(&world, &built);
    let breakdown = geo_breakdown(&world, &series);

    heading("Extension: originator geography by class (M-ditl)", "Tables VII/VIII annotations");
    let mut rows = Vec::new();
    for class in ApplicationClass::ALL {
        let top = top_countries(&breakdown, class, 3);
        if top.is_empty() {
            continue;
        }
        let conc = concentration(&breakdown, class).unwrap_or(0.0);
        let top_str = top
            .iter()
            .map(|(cc, n, f)| format!("{cc} {n} ({:.0}%)", f * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![class.name().to_string(), format!("{:.2}", conc), top_str]);
    }
    print_table(&["class", "concentration", "top countries"], &rows);
    println!();
    println!("concentration = share of the class's originators in its busiest");
    println!("country. Expected shape: regional classes (update, mail) concentrate;");
    println!("scanners spread across hosting-heavy countries; big countries lead");
    println!("simply by address-space share.");
}
