//! Extension experiment: what QNAME minimization (RFC 7816) does to
//! the sensor — the paper's §VII prediction that "use of query
//! minimization at the queriers will constrain the signal to only the
//! local authority", quantified.
//!
//! We sweep the fraction of minimizing resolvers and measure how many
//! analyzable originators survive at each authority level.

use backscatter_core::netsim::types::CountryCode;
use backscatter_core::prelude::*;
use bench::standard_world;
use bench::table::{heading, print_table};

fn main() {
    let world = standard_world();
    let jp = CountryCode::new("jp").unwrap();
    let mut cfg = ScenarioConfig::small(0x91, SimDuration::from_days(2));
    cfg.region = Some((jp, 0.85));
    cfg.slots.insert(ApplicationClass::Spam, 25);
    cfg.slots.insert(ApplicationClass::Scan, 20);
    cfg.pool_size = 3_000;
    let scenario = Scenario::new(&world, cfg);
    let contacts = scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_days(2));

    heading(
        "Extension: QNAME minimization vs backscatter visibility",
        "§VII prediction, quantified",
    );
    println!("({} contacts, JP-focused two-day scenario)", contacts.len());

    let authorities = [
        ("final (example /24)", None),
        ("jp-national", Some(AuthorityId::National(jp))),
        ("roots (B+M)", None),
    ];
    let _ = authorities; // layout documented below

    let mut rows = Vec::new();
    for adoption in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let observed = [
            AuthorityId::National(jp),
            AuthorityId::Root(RootServer::B),
            AuthorityId::Root(RootServer::M),
        ];
        let config = SimulatorConfig::observing(observed).with_qname_minimization(adoption);
        let mut sim = Simulator::new(&world, config);
        sim.process(contacts.iter().copied());
        let logs = sim.into_logs();
        let analyzable = |a: AuthorityId| {
            extract_features(
                &logs[&a],
                &world,
                SimTime::ZERO,
                SimTime::from_days(2),
                &FeatureConfig { min_queriers: 20, top_n: None },
            )
            .len()
        };
        let national = analyzable(AuthorityId::National(jp));
        let roots = analyzable(AuthorityId::Root(RootServer::B))
            + analyzable(AuthorityId::Root(RootServer::M));
        rows.push(vec![
            format!("{:.0}%", adoption * 100.0),
            logs[&AuthorityId::National(jp)].len().to_string(),
            national.to_string(),
            roots.to_string(),
        ]);
    }
    print_table(
        &["qmin adoption", "national log records", "analyzable @ national", "analyzable @ roots"],
        &rows,
    );
    println!();
    println!("final authorities are unaffected by minimization (they receive the");
    println!("full QNAME regardless); the upper-level sensor degrades linearly with");
    println!("adoption and is blind at 100% — the paper's §VII prediction.");
}
