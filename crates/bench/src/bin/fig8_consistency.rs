//! Fig. 8: CDF of the vote-consistency ratio r over M-sampled weekly
//! classifications, at querier thresholds q ∈ {20, 50, 75, 100}.
//! Expected shape: more queriers → more consistent votes; the large
//! majority of originators have a strict-majority class (r > 0.5).

use backscatter_core::classify::{consistency_cdf, consistency_ratios, vote_entropy, WeeklyVote};
use backscatter_core::prelude::*;
use bench::table::heading;
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MSampled);
    let series = classification_series(&world, &built);

    let votes: Vec<WeeklyVote> = series
        .iter()
        .flat_map(|w| {
            w.entries.iter().map(move |e| WeeklyVote {
                originator: e.originator,
                week: w.window,
                class: e.class,
                queriers: e.queriers,
            })
        })
        .collect();

    heading("Fig. 8: CDF of r (fraction of weeks with the majority class)", "Figure 8 / §V-E");
    for q in [20usize, 50, 75, 100] {
        let ratios = consistency_ratios(&votes, q, 4);
        let rs: Vec<f64> = ratios.iter().map(|r| r.1).collect();
        let cdf = consistency_cdf(&rs);
        println!();
        println!("# q = {q} ({} originators with ≥4 qualifying weeks)", rs.len());
        // Decimate to ~20 points.
        let step = (cdf.len() / 20).max(1);
        for (i, (r, f)) in cdf.iter().enumerate() {
            if i % step == 0 || i + 1 == cdf.len() {
                println!("{r:.3}\t{f:.3}");
            }
        }
        let strict_majority = rs.iter().filter(|r| **r > 0.5).count();
        let fully_consistent = rs.iter().filter(|r| **r >= 0.999).count();
        if !rs.is_empty() {
            println!(
                "# strict majority: {:.0}%, fully consistent: {:.0}%",
                100.0 * strict_majority as f64 / rs.len() as f64,
                100.0 * fully_consistent as f64 / rs.len() as f64
            );
        }
        // §V-E: among plurality-only originators (r ≤ 0.5), is there a
        // single dominant class (low vote entropy) or two equally
        // common ones? The paper finds the former.
        let plurality_entropy: Vec<f64> = ratios
            .iter()
            .filter(|(_, r, _, _)| *r <= 0.5)
            .filter_map(|(ip, _, _, _)| vote_entropy(&votes, *ip, q))
            .collect();
        if !plurality_entropy.is_empty() {
            let mean = plurality_entropy.iter().sum::<f64>() / plurality_entropy.len() as f64;
            println!(
                "# plurality cases (r ≤ 0.5): {} originators, mean vote entropy {:.2} (1.0 = two equal classes)",
                plurality_entropy.len(),
                mean
            );
        }
    }
}
