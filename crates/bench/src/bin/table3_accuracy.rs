//! Table III: classification accuracy of CART, random forest, and RBF
//! SVM on each dataset, via the paper's protocol — 50 repetitions of a
//! stratified 60/40 split, majority voting over 10 runs for the
//! randomized learners. Expected shape: RF best everywhere; accuracy in
//! the 0.6–0.85 band; roots no better than the national authority.

use backscatter_core::ml::repeated_holdout;
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    heading("Table III: validating classification against labeled ground truth", "Table III");
    let mut rows = Vec::new();
    for id in [DatasetId::JpDitl, DatasetId::BPostDitl, DatasetId::MDitl, DatasetId::MSampled] {
        let built = load_dataset(&world, id);
        // Short datasets curate once over their whole window; M-sampled
        // merges three curation dates spread over the nine months, like
        // the paper's recurring expert curation (§V-E).
        let n = built.windows().len();
        let curations: Vec<usize> = if n > 6 { vec![0, n / 3, 2 * n / 3] } else { vec![0] };
        let data = bench::harness::multi_date_training_data(&world, &built, &curations, 140);
        eprintln!(
            "[bench] {}: {} labeled examples over {} classes",
            id.name(),
            data.len(),
            data.present_classes().len()
        );
        for alg in [
            Algorithm::Cart(CartParams::default()),
            Algorithm::RandomForest(ForestParams::default()),
            Algorithm::Svm(SvmParams::default()),
        ] {
            let rep = repeated_holdout(&alg, &data, 0.6, 50, 0xACC);
            rows.push(vec![
                id.name().to_string(),
                alg.name().to_string(),
                format!("{:.2} ({:.2})", rep.mean.accuracy, rep.std.accuracy),
                format!("{:.2} ({:.2})", rep.mean.precision, rep.std.precision),
                format!("{:.2} ({:.2})", rep.mean.recall, rep.std.recall),
                format!("{:.2} ({:.2})", rep.mean.f1, rep.std.f1),
            ]);
        }
        // Building the M-sampled classification series here warms the
        // cache for the other longitudinal binaries.
        if id == DatasetId::MSampled {
            let _ = classification_series(&world, &built);
        }
    }
    print_table(&["dataset", "algorithm", "accuracy", "precision", "recall", "F1-score"], &rows);
}
