//! Fig. 7: classifier F-score over time under different training
//! strategies on B-multi-year. Expected shape: train-once decays away
//! from the curation point; retraining daily on fresh features holds up
//! far longer; automatically growing the label set from classifier
//! output compounds error and collapses.

use backscatter_core::classify::{
    evaluate_strategy, ClassifierPipeline, TrainingStrategy, WindowData,
};
use backscatter_core::ml::{Algorithm, ForestParams};
use backscatter_core::prelude::*;
use bench::table::heading;
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::BMultiYear);
    let windows = built.windows();
    let curation = windows.len() / 2;

    eprintln!("[bench] extracting {} windows…", windows.len());
    let data: Vec<WindowData> = windows
        .iter()
        .map(|w| {
            let feats = built.features_for_window(&world, *w, &FeatureConfig::default());
            WindowData {
                features: backscatter_core::classify::pipeline::feature_map(&feats),
                truth: built.truth_for_window(*w),
                querier_counts: feats.iter().map(|f| (f.originator, f.querier_count)).collect(),
            }
        })
        .collect();

    // A lighter forest keeps 60 windows × 3 strategies affordable.
    let pipeline = ClassifierPipeline {
        algorithm: Algorithm::RandomForest(ForestParams { n_trees: 60, ..Default::default() }),
        runs: 3,
    };

    // The paper's auto-grow collapse is driven by its ~30 % per-window
    // classification error. Our simulated features are more separable
    // (error ≈ 10 %), which slows the compounding — so we also run
    // auto-grow under a deliberately weak learner at paper-like error
    // levels to exhibit the §V-D mechanism.
    let weak = ClassifierPipeline {
        algorithm: Algorithm::RandomForest(ForestParams {
            n_trees: 3,
            tree: backscatter_core::ml::CartParams {
                max_depth: 3,
                min_samples_split: 8,
                min_samples_leaf: 4,
                max_features: Some(3),
            },
        }),
        runs: 1,
    };

    heading("Fig. 7: training strategies over time (weekly F-score)", "Figure 7 / §V");
    println!("curation at week {curation}; evaluation on re-appearing curated examples");
    println!("# week\ttrain-once\ttrain-daily\tauto-grow\tauto-grow(weak learner)");

    // Decay is visible both before and after the curation point: run
    // each strategy forward from curation, and backward over the weeks
    // before it (the world is stationary, so reversed replay is a valid
    // stand-in for the paper's backward evaluation).
    let forward: Vec<WindowData> = data[curation..].to_vec();
    let backward: Vec<WindowData> = data[..=curation].iter().rev().cloned().collect();

    let run = |strategy: TrainingStrategy, seq: &[WindowData]| {
        evaluate_strategy(strategy, seq, &pipeline, 140, 0x716)
    };
    let strategies =
        [TrainingStrategy::TrainOnce, TrainingStrategy::RetrainDaily, TrainingStrategy::AutoGrow];
    let mut fwd: Vec<_> = strategies.iter().map(|s| run(*s, &forward)).collect();
    let mut bwd: Vec<_> = strategies.iter().map(|s| run(*s, &backward)).collect();
    fwd.push(evaluate_strategy(TrainingStrategy::AutoGrow, &forward, &weak, 140, 0x716));
    bwd.push(evaluate_strategy(TrainingStrategy::AutoGrow, &backward, &weak, 140, 0x716));

    let fmt = |f1: Option<f64>| f1.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".to_string());
    // Backward half, printed in chronological order (skip the curation
    // window itself — it appears in the forward half).
    for k in (1..backward.len()).rev() {
        let week = curation - k;
        print!("{week}");
        for s in &bwd {
            print!("\t{}", fmt(s.scores[k].f1));
        }
        println!();
    }
    for (k, _) in forward.iter().enumerate() {
        let week = curation + k;
        print!("{week}");
        for s in &fwd {
            print!("\t{}", fmt(s.scores[k].f1));
        }
        println!();
    }
    println!();
    let names = ["train-once", "train-daily", "auto-grow", "auto-grow(weak)"];
    for (i, name) in names.iter().enumerate() {
        println!(
            "# {}: mean F1 forward {:.2}, usable windows {}/{}",
            name,
            fwd[i].mean_f1(),
            fwd[i].usable_windows(),
            forward.len()
        );
    }
}
