//! Extension: per-class precision/recall on JP-ditl — the quantitative
//! version of §IV-C's discussion ("we see mislabeling of application
//! classes where the training data is sparse: ntp, update, ad-tracker,
//! and cdn … p2p is sometimes misclassified as scan").

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{Algorithm, ConfusionMatrix, ForestParams, MajorityEnsemble};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let window = built.windows()[0];
    let feats = built.features_for_window(&world, window, &FeatureConfig::default());
    let truth = built.truth_for_window(window);
    let labeled = LabeledSet::curate(&truth, &feats, 140);
    let data = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));

    // Aggregate a confusion matrix over repeated holdouts so small
    // classes accumulate enough test examples to be judged.
    let mut all_truth = Vec::new();
    let mut all_pred = Vec::new();
    for rep in 0..25u64 {
        let (train, test) = data.stratified_split(0.6, 0xC1A55 + rep);
        if train.present_classes().len() < 2 || test.is_empty() {
            continue;
        }
        let ensemble = MajorityEnsemble::fit(
            &Algorithm::RandomForest(ForestParams::default()),
            &train,
            10,
            0x11 + rep,
        );
        let (xs, t) = test.xy();
        all_truth.extend(t);
        all_pred.extend(xs.iter().map(|x| ensemble.predict(x)));
    }
    let cm = ConfusionMatrix::from_predictions(12, &all_truth, &all_pred);

    heading(
        "Extension: per-class accuracy on JP-ditl (25 holdouts aggregated)",
        "§IV-C discussion",
    );
    let fmt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".to_string());
    let rows: Vec<Vec<String>> = cm
        .per_class()
        .into_iter()
        .map(|r| {
            let name = ApplicationClass::from_index(r.class)
                .map(|c| c.name().to_string())
                .unwrap_or_default();
            let confusion = r
                .top_confusion
                .and_then(|(p, n)| {
                    ApplicationClass::from_index(p).map(|c| format!("{} ({n})", c.name()))
                })
                .unwrap_or_else(|| "-".to_string());
            vec![name, r.support.to_string(), fmt(r.precision), fmt(r.recall), fmt(r.f1), confusion]
        })
        .collect();
    print_table(
        &["class", "test support", "precision", "recall", "F1", "most confused with"],
        &rows,
    );
    println!();
    println!("paper shape: big classes (spam, scan, mail) strong; sparse classes");
    println!("(ntp, update, ad-tracker, cdn) weak; p2p leaks into scan.");
}
