//! Fig. 9: distribution of originator footprint sizes per dataset —
//! heavy-tailed, with hundreds of large originators.

use backscatter_core::analysis::footprint::{ccdf, counts_with_at_least};
use backscatter_core::prelude::*;
use bench::table::heading;
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    heading("Fig. 9: distribution of originator footprint size", "Figure 9");
    for id in [DatasetId::JpDitl, DatasetId::BPostDitl, DatasetId::MDitl, DatasetId::MSampled] {
        let built = load_dataset(&world, id);
        let series = classification_series(&world, &built);
        // For multi-window datasets, use the first window (the paper
        // plots one feature-window per dataset: d = 50 h / 36 h / 7 d).
        let entries = &series[0].entries;
        let dist = ccdf(entries);
        println!();
        println!("# {} (window 0, {} analyzable originators)", id.name(), entries.len());
        println!("# footprint\tfraction-with-at-least");
        // Print a decimated series: every point would be thousands of
        // lines; keep ~30 log-spaced points.
        let step = (dist.len() / 30).max(1);
        for (i, (size, frac)) in dist.iter().enumerate() {
            if i % step == 0 || i + 1 == dist.len() {
                println!("{size}\t{frac:.5}");
            }
        }
        println!(
            "# ≥20 queriers: {}, ≥100: {}, ≥1000: {}, max: {}",
            counts_with_at_least(entries, 20),
            counts_with_at_least(entries, 100),
            counts_with_at_least(entries, 1000),
            entries.iter().map(|e| e.queriers).max().unwrap_or(0),
        );
    }
}
