//! Tables VII & VIII: the highest-ranked originators with external
//! correlation — darknet addresses touched, blacklist listings, PTR TTL
//! disposition, and the class our classifier assigns. Expected shape:
//! most top JP originators are spammers/scanners with blacklist or
//! darknet evidence and only a few "clean" rows; at M-Root, CDNs and
//! scanners (often from undelegated space) dominate.

use backscatter_core::analysis::cases::bs_datasets_types::{BlacklistView, DarknetView};
use backscatter_core::analysis::cases::{clean_rows, top_originator_table, CaseRow, TtlColumn};
use backscatter_core::datasets::{Blacklist, Darknet};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};
use std::collections::BTreeMap;

struct Bl<'a>(&'a Blacklist);
impl BlacklistView for Bl<'_> {
    fn bls(&self, ip: std::net::Ipv4Addr) -> u8 {
        self.0.bls(ip)
    }
    fn blo(&self, ip: std::net::Ipv4Addr) -> u8 {
        self.0.blo(ip)
    }
}
struct Dn<'a>(&'a Darknet);
impl DarknetView for Dn<'_> {
    fn dark_ips(&self, ip: std::net::Ipv4Addr) -> u64 {
        self.0.dark_ips(ip)
    }
}

fn ttl_str(t: TtlColumn) -> String {
    match t {
        TtlColumn::Positive(ttl) => format!("{ttl}s"),
        TtlColumn::Negative(ttl) => format!("†{ttl}s"),
        TtlColumn::Failure => "F".to_string(),
    }
}

fn print_rows(rows: &[CaseRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.rank.to_string(),
                r.originator.to_string(),
                r.queriers.to_string(),
                ttl_str(r.ttl),
                r.dark_ips.to_string(),
                r.bls.to_string(),
                r.blo.to_string(),
                r.class.map(|c| c.name().to_string()).unwrap_or_else(|| "?".to_string()),
            ]
        })
        .collect();
    print_table(
        &["rank", "originator", "queriers", "TTL", "DarkIP", "BLS", "BLO", "class"],
        &table,
    );
    println!("clean rows (no external evidence): {} of {}", clean_rows(rows), rows.len());
}

fn main() {
    let world = standard_world();
    for (id, what) in [
        (DatasetId::JpDitl, "Table VII: top originators in JP-ditl"),
        (DatasetId::MDitl, "Table VIII: top originators in M-ditl"),
    ] {
        let built = load_dataset(&world, id);
        let series = classification_series(&world, &built);
        let classified: BTreeMap<_, _> =
            series[0].entries.iter().map(|e| (e.originator, e.class)).collect();
        let window = built.windows()[0];
        let feats = built.features_for_window(&world, window, &FeatureConfig::default());
        heading(what, "Tables VII/VIII");
        let rows = top_originator_table(
            &world,
            &feats,
            &classified,
            &Bl(&built.blacklist),
            &Dn(&built.darknet),
            30,
        );
        print_rows(&rows);
    }
}
