//! Table I: the datasets — observation point, span, sampling, and
//! reverse-query volume.
//!
//! The three short (DITL-style) datasets are simulated on the spot (or
//! loaded from cache); the long ones are reported from cache when a
//! longitudinal binary has built them, and from their specs otherwise.

use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    heading("Table I: DNS datasets", "Table I");
    let mut rows = Vec::new();
    for id in DatasetId::ALL {
        let spec = DatasetSpec::paper(id, Scale::standard(), 1);
        let span_h = spec.scenario.duration.secs() as f64 / 3600.0;
        let short = matches!(
            id,
            DatasetId::JpDitl
                | DatasetId::BPostDitl
                | DatasetId::MDitl
                | DatasetId::MDitl2015
                | DatasetId::BLong
        );
        let (reverse_queries, qps) = if short {
            let built = load_dataset(&world, id);
            let n = built.log.len();
            (n.to_string(), format!("{:.2}", n as f64 / (span_h * 3600.0)))
        } else if let Some(log) = bench::cache::load_log(&format!("{}-s1", id.name())) {
            let n = log.len();
            (n.to_string(), format!("{:.2}", n as f64 / (span_h * 3600.0)))
        } else {
            ("(not simulated yet)".to_string(), "-".to_string())
        };
        rows.push(vec![
            id.name().to_string(),
            spec.authority.to_string(),
            if span_h < 100.0 {
                format!("{span_h:.0} hours")
            } else {
                format!("{:.0} days", span_h / 24.0)
            },
            spec.sampling.map(|n| format!("1:{n}")).unwrap_or_else(|| "no".to_string()),
            reverse_queries,
            qps,
        ]);
    }
    print_table(
        &["dataset", "authority", "duration", "sampling", "reverse queries", "reverse qps"],
        &rows,
    );
}
