//! Ablation: random-forest size and the 10-run majority vote
//! (§III-D: "we run each 10 times and take the majority").

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{Algorithm, ConfusionMatrix, ForestParams, MajorityEnsemble};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let window = built.windows()[0];
    let feats = built.features_for_window(&world, window, &FeatureConfig::default());
    let truth = built.truth_for_window(window);
    let labeled = LabeledSet::curate(&truth, &feats, 140);
    let data = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));

    heading("Ablation: forest size × majority-vote runs", "§III-D design choice");
    let mut rows = Vec::new();
    for n_trees in [10usize, 50, 100, 200] {
        for runs in [1usize, 10] {
            // Manual repeated holdout with the ensemble size under test.
            let mut f1s = Vec::new();
            let mut accs = Vec::new();
            for rep in 0..10u64 {
                let (train, test) = data.stratified_split(0.6, 0xF0 + rep);
                let alg = Algorithm::RandomForest(ForestParams { n_trees, ..Default::default() });
                let ensemble = MajorityEnsemble::fit(&alg, &train, runs, 0x51 + rep);
                let (xs, truth_labels) = test.xy();
                let predicted: Vec<usize> = xs.iter().map(|x| ensemble.predict(x)).collect();
                let m = ConfusionMatrix::from_predictions(12, &truth_labels, &predicted).metrics();
                f1s.push(m.f1);
                accs.push(m.accuracy);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            rows.push(vec![
                n_trees.to_string(),
                runs.to_string(),
                format!("{:.3}", mean(&accs)),
                format!("{:.3}", mean(&f1s)),
            ]);
        }
    }
    print_table(&["trees", "vote runs", "accuracy", "F1"], &rows);
    println!();
    println!("expected: gains flatten beyond ~100 trees; majority voting adds a");
    println!("small stabilizing bump, mirroring the paper's choice of 10 runs.");
}
