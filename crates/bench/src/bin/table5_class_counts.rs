//! Table V: number of originators in each class, per dataset, using
//! the trained RF classifier. Expected shape: spam most common at the
//! JP national authority; mail/spam/cdn prominent at roots with M-Root
//! seeing more CDN than B-Root; scan and spam dominate the long
//! M-sampled feed.

use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};
use std::collections::BTreeMap;

fn main() {
    let world = standard_world();
    heading("Table V: number of originators in each class", "Table V");
    let mut per_dataset: Vec<(String, BTreeMap<ApplicationClass, usize>)> = Vec::new();
    for id in [DatasetId::JpDitl, DatasetId::BPostDitl, DatasetId::MDitl, DatasetId::MSampled] {
        let built = load_dataset(&world, id);
        let series = classification_series(&world, &built);
        // Short datasets have one window; for M-sampled, Table V counts
        // originator-window detections over the whole span (the paper's
        // much larger M-sampled rows come from the same effect).
        let mut counts: BTreeMap<ApplicationClass, usize> = BTreeMap::new();
        for w in &series {
            for e in &w.entries {
                *counts.entry(e.class).or_insert(0) += 1;
            }
        }
        per_dataset.push((id.name().to_string(), counts));
    }

    let mut header: Vec<String> = vec!["data".to_string()];
    header.extend(ApplicationClass::ALL.iter().map(|c| c.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> =
        per_dataset
            .iter()
            .map(|(name, counts)| {
                let mut row = vec![name.clone()];
                row.extend(ApplicationClass::ALL.iter().map(|c| {
                    counts.get(c).map(|n| n.to_string()).unwrap_or_else(|| "-".to_string())
                }));
                row
            })
            .collect();
    print_table(&header_refs, &rows);
}
