//! Table IV: the most discriminative features by random-forest Gini
//! importance on JP-ditl and M-ditl. Expected shape: mail, home,
//! nxdomain, unreach among the top static features; a rate or entropy
//! feature in the top six.

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{Forest, ForestParams};
use backscatter_core::prelude::*;
use backscatter_core::sensor::FeatureVector;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    heading("Table IV: top discriminative features (RF Gini importance)", "Table IV");
    let mut per_dataset: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for id in [DatasetId::JpDitl, DatasetId::MDitl] {
        let built = load_dataset(&world, id);
        let window = built.windows()[0];
        let feats = built.features_for_window(&world, window, &FeatureConfig::default());
        let truth = built.truth_for_window(window);
        let labeled = LabeledSet::curate(&truth, &feats, 140);
        let data = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));
        let forest = Forest::fit(&data, &ForestParams::default(), 0x6111);
        per_dataset
            .push((id.name().to_string(), forest.ranked_importances(&FeatureVector::names())));
    }
    let mut rows = Vec::new();
    for rank in 0..6 {
        let mut row = vec![format!("{}", rank + 1)];
        for (_, ranked) in &per_dataset {
            let (name, gini) = &ranked[rank];
            // Display as percent-style ×100 like the paper's table.
            row.push(format!("{name} ({:.1})", gini * 100.0));
        }
        rows.push(row);
    }
    print_table(&["rank", &per_dataset[0].0, &per_dataset[1].0], &rows);
    println!();
    println!("(S) = static querier-name fraction, (dyn) = dynamic; Gini shown ×100.");
}
