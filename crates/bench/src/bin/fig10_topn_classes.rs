//! Fig. 10: class mix of the top-100 / top-1000 / top-10000 originators
//! per dataset. Expected shape: the biggest footprints are unsavoury
//! (spam and scan dominate the top-100), while infrastructure classes
//! (mail, cloud, cdn, crawler) grow as smaller originators enter.

use backscatter_core::analysis::topn::class_mix_top_n;
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    heading("Fig. 10: fraction of originator classes among top-N originators", "Figure 10");
    for id in [DatasetId::JpDitl, DatasetId::BPostDitl, DatasetId::MDitl] {
        let built = load_dataset(&world, id);
        let series = classification_series(&world, &built);
        let entries = &series[0].entries;
        println!();
        println!("{} ({} analyzable originators)", id.name(), entries.len());
        let mut rows = Vec::new();
        for n in [100usize, 1000, 10_000] {
            let mix = class_mix_top_n(entries, n);
            let total: usize = mix.values().sum();
            let mut row = vec![format!("top-{n}")];
            for class in ApplicationClass::ALL {
                let f = mix.get(&class).copied().unwrap_or(0) as f64 / total.max(1) as f64;
                row.push(if f == 0.0 { "-".into() } else { format!("{f:.2}") });
            }
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["subset".to_string()];
        header.extend(ApplicationClass::ALL.iter().map(|c| c.name().to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(&header_refs, &rows);
    }
}
