//! Table II: dynamic features for the six case studies on JP-ditl.

use backscatter_core::prelude::*;
use bench::harness::case_studies;
use bench::table::{f3, heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let cases = case_studies(&world, &built);
    heading("Table II: dynamic features for case studies (JP-ditl)", "Table II");
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, f)| {
            let d = &f.features.dynamic;
            vec![
                name.to_string(),
                format!("{:.1}", d.queries_per_querier),
                f3(d.global_entropy),
                f3(d.local_entropy),
                f3(d.countries_per_querier),
                f3(d.persistence),
            ]
        })
        .collect();
    print_table(
        &[
            "case",
            "queries/querier",
            "global entropy",
            "local entropy",
            "countries/querier",
            "persistence",
        ],
        &rows,
    );
    println!();
    println!("expected shape: spam > mail in queries/querier; cdn and mail lower");
    println!("global entropy than scanners; scanners highest local entropy.");
}
