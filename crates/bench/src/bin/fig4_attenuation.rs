//! Fig. 4: controlled-scan attenuation — queriers observed at the final
//! authority (and the roots) as a function of scan size, with the
//! power-law fit. Expected shape: a sub-linear power law at the final
//! authority (the paper fits exponent ≈ 0.71 at roughly one querier per
//! thousand targets) and orders-of-magnitude fewer queriers at roots.

use backscatter_core::netsim::experiment::{power_law_fit, run_controlled_scan, ControlledScan};
use backscatter_core::netsim::hierarchy::Delegation;
use backscatter_core::netsim::types::ContactKind;
use backscatter_core::prelude::*;
use bench::standard_world;
use bench::table::{heading, print_table};

fn main() {
    let world = standard_world();
    // A delegated prober whose final authority we instrument.
    let prober = (0..10_000u64)
        .map(|i| world.random_public_addr(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF164))
        .find(|a| matches!(world.delegation(*a), Delegation::Delegated { .. }))
        .expect("delegated prober exists");

    heading("Fig. 4: querier footprint of controlled random scans", "Figure 4 / §IV-D");
    println!("prober {prober}, PTR TTL forced to 0 (caching disabled), ICMP+TCP trials");

    let sizes: [u64; 7] = [4_000, 13_000, 40_000, 130_000, 400_000, 1_300_000, 4_000_000];
    let kinds = [ContactKind::ProbeIcmp, ContactKind::ProbeTcp(22), ContactKind::ProbeTcp(80)];
    let mut rows = Vec::new();
    let mut fit_points: Vec<(f64, f64)> = Vec::new();
    for (t, &targets) in sizes.iter().enumerate() {
        for (k, kind) in kinds.iter().enumerate() {
            // Keep the biggest size to a single trial for time.
            if targets >= 1_000_000 && k > 0 {
                continue;
            }
            let obs = run_controlled_scan(
                &world,
                &ControlledScan {
                    prober,
                    targets,
                    kind: *kind,
                    duration: SimDuration::from_hours(13.min(1 + targets / 400_000)),
                    trial_seed: (t * 10 + k) as u64,
                },
            );
            let root_total: usize = obs.queriers_at_root.values().sum();
            rows.push(vec![
                targets.to_string(),
                format!("{kind:?}"),
                obs.queriers_at_final.to_string(),
                root_total.to_string(),
            ]);
            fit_points.push((targets as f64, obs.queriers_at_final as f64));
        }
    }
    print_table(&["targets", "probe", "queriers @ final", "queriers @ roots"], &rows);

    if let Some((c, p)) = power_law_fit(&fit_points) {
        println!();
        println!("power-law fit at final authority: queriers ≈ {c:.4} · targets^{p:.2}");
        println!("(paper: sub-linear, exponent ≈ 0.71; ≈ 1 querier per 1000 targets)");
        let at_4m = c * (4_000_000f64).powf(p);
        println!(
            "fitted queriers at 4M targets: {at_4m:.0} (≈ 1 per {:.0} targets)",
            4_000_000.0 / at_4m
        );
    }
}
