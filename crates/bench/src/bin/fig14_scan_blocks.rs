//! Fig. 14 + §VI-B team statistics: /24 blocks originating scanning
//! over time, and how many blocks look like coordinated teams.

use backscatter_core::analysis::teams::{block_series, busiest_scan_blocks, scan_teams};
use backscatter_core::prelude::*;
use bench::table::heading;
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MSampled);
    let series = classification_series(&world, &built);

    heading("Fig. 14: scanning addresses per /24 block over time", "Figure 14 / §VI-B");
    let top = busiest_scan_blocks(&series, 5);
    let blocks: Vec<_> = top.iter().map(|(b, _)| *b).collect();
    let per_block = block_series(&series, &blocks);
    for (block, n_total) in &top {
        println!();
        println!("# block {block}/24 ({n_total} distinct scanning addresses overall)");
        if let Some(s) = per_block.get(block) {
            for (w, n) in s {
                println!("{w}\t{n}");
            }
        }
    }

    let summary = scan_teams(&series, 4);
    println!();
    println!("== §VI-B team statistics ==");
    println!("unique scan originators:          {}", summary.scan_originators);
    println!("unique originating /24 blocks:    {}", summary.blocks);
    println!("blocks with ≥4 scanners (teams):  {}", summary.candidate_teams);
    println!("…of which single-class:           {}", summary.single_class_teams);
    println!("(paper: 5606 scanners, 2227 blocks, 167 teams, 39 single-class — same ordering expected at simulator scale)");
}
