//! Fig. 6: re-appearing *malicious* labeled examples over time around a
//! curation point. Expected shape: sharp decay — the paper sees the
//! count fall to ~50 % within a month on either side of curation,
//! driven by spam/scanner address turnover.

use bench::harness::persistence_figure;

fn main() {
    persistence_figure(true);
}
