//! Fig. 15: week-by-week churn of scan originators — new, continuing,
//! and departing. Expected shape: a stable continuing core with roughly
//! 20 % weekly turnover.

use backscatter_core::analysis::churn::churn_series;
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MSampled);
    let series = classification_series(&world, &built);
    let churn = churn_series(&series, ApplicationClass::Scan);

    heading("Fig. 15: week-by-week churn for scan originators (M-sampled)", "Figure 15");
    let rows: Vec<Vec<String>> = churn
        .iter()
        .map(|c| {
            vec![
                c.window.to_string(),
                c.new.to_string(),
                c.continuing.to_string(),
                c.departing.to_string(),
            ]
        })
        .collect();
    print_table(&["week", "new", "continuing", "departing"], &rows);

    // Turnover statistics over the steady part (skip the first week).
    let steady = &churn[1..];
    let turnover: Vec<f64> = steady
        .iter()
        .filter(|c| c.new + c.continuing > 0)
        .map(|c| c.new as f64 / (c.new + c.continuing) as f64)
        .collect();
    let mean = turnover.iter().sum::<f64>() / turnover.len().max(1) as f64;
    println!();
    println!(
        "# mean weekly turnover: {:.0}% new (paper: ~20% with a stable continuing core)",
        mean * 100.0
    );
}
