//! Fig. 12: weekly box plot of scanner footprints over M-sampled.
//! Expected shape: stable median and quartiles with a volatile 90th
//! percentile — a core of steady scanners plus occasional very large
//! ones.

use backscatter_core::analysis::trends::footprint_boxes;
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{classification_series, load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::MSampled);
    let series = classification_series(&world, &built);
    let boxes = footprint_boxes(&series, ApplicationClass::Scan);

    heading("Fig. 12: scanner footprint box plot per week (M-sampled)", "Figure 12");
    let rows: Vec<Vec<String>> = boxes
        .iter()
        .filter_map(|(w, b)| {
            b.map(|b| {
                vec![
                    w.to_string(),
                    b.n.to_string(),
                    b.p10.to_string(),
                    b.q1.to_string(),
                    b.median.to_string(),
                    b.q3.to_string(),
                    b.p90.to_string(),
                    b.max.to_string(),
                ]
            })
        })
        .collect();
    print_table(&["week", "n", "p10", "q1", "median", "q3", "p90", "max"], &rows);

    // Stability check: relative spread of weekly medians vs weekly p90s.
    let medians: Vec<f64> = boxes.iter().filter_map(|(_, b)| b.map(|b| b.median as f64)).collect();
    let p90s: Vec<f64> = boxes.iter().filter_map(|(_, b)| b.map(|b| b.p90 as f64)).collect();
    let cv = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len().max(1) as f64;
        let var = v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64;
        var.sqrt() / m.max(1e-9)
    };
    println!();
    println!(
        "# weekly variation: median CV {:.2}, p90 CV {:.2} (paper: median stable, p90 volatile)",
        cv(&medians),
        cv(&p90s)
    );
}
