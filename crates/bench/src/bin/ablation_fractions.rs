//! Ablation: fraction-based vs count-based static features.
//!
//! The paper uses "the fraction of queriers rather than absolute counts
//! so static features are independent of query rate" (§III-C). The
//! count-based variant multiplies each static fraction by the footprint,
//! re-coupling the features to activity volume.

use backscatter_core::classify::pipeline::feature_map;
use backscatter_core::classify::{ClassifierPipeline, LabeledSet};
use backscatter_core::ml::{repeated_holdout, Algorithm, Dataset, ForestParams, Sample};
use backscatter_core::prelude::*;
use bench::table::{heading, print_table};
use bench::{load_dataset, standard_world};

fn main() {
    let world = standard_world();
    let built = load_dataset(&world, DatasetId::JpDitl);
    let window = built.windows()[0];
    let feats = built.features_for_window(&world, window, &FeatureConfig::default());
    let truth = built.truth_for_window(window);
    let labeled = LabeledSet::curate(&truth, &feats, 140);
    let fractions = ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats));

    // Count-based variant: scale the 14 static dimensions by footprint.
    let footprints: std::collections::BTreeMap<_, _> =
        feats.iter().map(|f| (f.originator, f.querier_count)).collect();
    let mut counts = Dataset::new(fractions.feature_names.clone(), fractions.class_names.clone());
    for (e, s) in labeled.examples.iter().filter_map(|e| {
        feature_map(&feats)
            .get(&e.originator)
            .map(|fv| (e, Sample { features: fv.to_vec(), label: e.class.index() }))
    }) {
        let mut s = s;
        let q = footprints.get(&e.originator).copied().unwrap_or(1) as f64;
        for v in s.features.iter_mut().take(14) {
            *v *= q;
        }
        counts.push(s);
    }

    heading("Ablation: fraction-based vs count-based static features", "§III-C design choice");
    let mut rows = Vec::new();
    for (name, data) in [("fractions (paper)", &fractions), ("raw counts", &counts)] {
        let rep = repeated_holdout(
            &Algorithm::RandomForest(ForestParams::default()),
            data,
            0.6,
            15,
            0xFAC,
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", rep.mean.accuracy),
            format!("{:.3}", rep.mean.precision),
            format!("{:.3}", rep.mean.f1),
        ]);
    }
    print_table(&["static encoding", "RF accuracy", "RF precision", "RF F1"], &rows);
    println!();
    println!("expected: count-based features entangle class identity with footprint");
    println!("size, hurting generalization across activity volumes.");
}
