//! Shared harness for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (`cargo run --release -p bench --bin
//! table3_accuracy`, …). The binaries share four things:
//!
//! * [`cache`] — expensive dataset simulations (M-sampled runs for
//!   minutes) are built once and their query logs cached as TSV under
//!   `bench-cache/` at the workspace root;
//! * [`harness`] — the standard world, dataset loaders, and the
//!   classification-series runner reused across longitudinal figures;
//! * [`table`] — plain-text table/series printers so every binary's
//!   output reads like the paper's artifact;
//! * [`perfsnap`] — the performance-measurement suite shared by
//!   `perf_snapshot` (records the `BENCH_pipeline.json` baseline) and
//!   `perf_gate` (fails CI on >20% regressions against it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod harness;
pub mod perfsnap;
pub mod table;

pub use harness::{classification_series, load_dataset, standard_world};
