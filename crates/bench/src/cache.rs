//! On-disk caching of expensive simulation products.
//!
//! Query logs cache as the TSV format `bs-netsim` defines; per-window
//! classification series cache as a small TSV of
//! `(window, originator, queriers, class)` rows. Cache keys embed the
//! dataset name and seed; delete `bench-cache/` to force a rebuild.

use backscatter_core::analysis::{ClassifiedOriginator, WindowClassification};
use backscatter_core::netsim::log::QueryLog;
use backscatter_core::prelude::ApplicationClass;
use std::fs;
use std::path::PathBuf;

/// The cache directory at the workspace root.
pub fn cache_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let dir = manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the workspace root")
        .join("bench-cache");
    fs::create_dir_all(&dir).expect("create bench-cache");
    dir
}

/// Load a cached query log, if present and parseable.
pub fn load_log(key: &str) -> Option<QueryLog> {
    let path = cache_dir().join(format!("{key}.log.tsv"));
    let text = fs::read_to_string(path).ok()?;
    let log = QueryLog::from_tsv(&text).ok()?;
    bs_telemetry::debug!("bench.cache", "log cache hit"; key = key, records = log.len());
    Some(log)
}

/// Store a query log under a cache key.
pub fn store_log(key: &str, log: &QueryLog) {
    let path = cache_dir().join(format!("{key}.log.tsv"));
    fs::write(path, log.to_tsv()).expect("write log cache");
    bs_telemetry::debug!("bench.cache", "log cached"; key = key, records = log.len());
}

/// Load a cached classification series.
pub fn load_series(key: &str) -> Option<Vec<WindowClassification>> {
    let path = cache_dir().join(format!("{key}.series.tsv"));
    let text = fs::read_to_string(path).ok()?;
    let mut windows: Vec<WindowClassification> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split('\t');
        let window: usize = f.next()?.parse().ok()?;
        let originator = f.next()?.parse().ok()?;
        let queriers: usize = f.next()?.parse().ok()?;
        let class: ApplicationClass = f.next()?.parse().ok()?;
        while windows.len() <= window {
            windows.push(WindowClassification { window: windows.len(), entries: Vec::new() });
        }
        windows[window].entries.push(ClassifiedOriginator { originator, queriers, class });
    }
    if windows.is_empty() {
        None
    } else {
        Some(windows)
    }
}

/// Store a classification series under a cache key.
pub fn store_series(key: &str, series: &[WindowClassification]) {
    let mut out = String::new();
    for w in series {
        for e in &w.entries {
            out.push_str(&format!("{}\t{}\t{}\t{}\n", w.window, e.originator, e.queriers, e.class));
        }
    }
    let path = cache_dir().join(format!("{key}.series.tsv"));
    fs::write(path, out).expect("write series cache");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_trips() {
        let series = vec![
            WindowClassification {
                window: 0,
                entries: vec![ClassifiedOriginator {
                    originator: "10.0.0.1".parse().unwrap(),
                    queriers: 42,
                    class: ApplicationClass::Scan,
                }],
            },
            WindowClassification {
                window: 1,
                entries: vec![ClassifiedOriginator {
                    originator: "10.0.0.2".parse().unwrap(),
                    queriers: 99,
                    class: ApplicationClass::Spam,
                }],
            },
        ];
        store_series("test-roundtrip", &series);
        let loaded = load_series("test-roundtrip").unwrap();
        assert_eq!(loaded, series);
        let _ = std::fs::remove_file(cache_dir().join("test-roundtrip.series.tsv"));
    }

    #[test]
    fn missing_cache_is_none() {
        assert!(load_log("definitely-not-a-key").is_none());
        assert!(load_series("definitely-not-a-key").is_none());
    }
}
