//! Criterion benches for feature extraction: the qmeta metadata-plane
//! fast path against the retained per-pair reference, on the two
//! workload shapes that bracket the querier-overlap spectrum.
//!
//! * **high-overlap** — many originators drawing footprints from a
//!   small shared querier pool (the paper's regime: shared resolver
//!   infrastructure). Σ footprints ≫ unique queriers, so the
//!   resolve-once table pays maximally.
//! * **disjoint** — every originator brings its own queriers, so
//!   Σ footprints ≈ unique queriers and the fast path's win collapses
//!   to bookkeeping differences — the honest worst case.
//!
//! A third group times the warm-cache path: the same window re-entered
//! with a populated `QuerierMetaCache`, the steady state of the live
//! streaming driver. Under the offline criterion stub each bench body
//! runs exactly once, so `cargo bench -p bench --bench extract`
//! doubles as a smoke test.

use backscatter_core::sensor::ingest::Observations;
use backscatter_core::sensor::qmeta::QuerierMetaCache;
use backscatter_core::sensor::{
    extract_from_observations, extract_from_observations_reference, extract_with_meta_cache,
    FeatureConfig,
};
use bench::perfsnap::{overlap_observations, SynthQuerierInfo};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// High-overlap: 600 originators × 60-querier footprints from a pool
/// of 1 500.
fn high_overlap() -> Observations {
    overlap_observations(600, 60, 1_500)
}

/// Disjoint: the same pair volume, but a pool as large as the demand —
/// footprints barely intersect.
fn disjoint() -> Observations {
    overlap_observations(600, 60, 600 * 60)
}

fn pairs(obs: &Observations) -> u64 {
    obs.per_originator.values().map(|o| o.querier_count() as u64).sum()
}

fn extract_cold(c: &mut Criterion) {
    let config = FeatureConfig { min_queriers: 1, top_n: None };
    for (shape, obs) in [("high_overlap", high_overlap()), ("disjoint", disjoint())] {
        let mut g = c.benchmark_group(format!("extract_{shape}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(pairs(&obs)));
        g.bench_function("fast", |b| {
            b.iter(|| extract_from_observations(&obs, &SynthQuerierInfo, &config).len())
        });
        g.bench_function("reference", |b| {
            b.iter(|| extract_from_observations_reference(&obs, &SynthQuerierInfo, &config).len())
        });
        g.finish();
    }
}

fn extract_warm_cache(c: &mut Criterion) {
    let config = FeatureConfig { min_queriers: 1, top_n: None };
    let obs = high_overlap();
    let mut g = c.benchmark_group("extract_high_overlap_warm_cache");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pairs(&obs)));
    let mut cache = QuerierMetaCache::default();
    extract_with_meta_cache(&obs, &SynthQuerierInfo, &config, Some(&mut cache));
    g.bench_function("warm", |b| {
        b.iter(|| extract_with_meta_cache(&obs, &SynthQuerierInfo, &config, Some(&mut cache)).len())
    });
    g.finish();
}

criterion_group!(benches, extract_cold, extract_warm_cache);
criterion_main!(benches);
