//! Criterion benches for the `bs-fastmap` ingest engine: the
//! compact-key fast path against the retained BTree reference, on the
//! two workload shapes that stress opposite ends of the sensor.
//!
//! * **storm** — many one-shot originators, few queriers each: admission
//!   filtering, probation churn, and eviction dominate. This is the
//!   shape that made the reference's O(n) `min_by_key` eviction scan a
//!   bottleneck.
//! * **heavy-hitter** — few originators, many queriers each: dedup
//!   lookups and querier-set growth dominate.
//!
//! Logs are generated with a fixed-seed LCG so every run (and the fast
//! vs reference comparison) sees identical streams. Under the offline
//! criterion stub each bench body runs exactly once, so `cargo bench
//! -p bench --bench ingest` doubles as a smoke test.

use backscatter_core::dns::{Rcode, SimDuration, SimTime};
use backscatter_core::netsim::log::{QueryLog, QueryLogRecord};
use backscatter_core::sensor::ingest::Observations;
use backscatter_core::sensor::{ReferenceStreamingSensor, StreamConfig, StreamingSensor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;

const RECORDS: usize = 50_000;
const SPAN_SECS: u64 = 20_000;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Many distinct originators (a scan storm), few queriers each.
fn storm_log() -> QueryLog {
    let mut rng = Lcg(0x5EED_0001);
    let mut log = QueryLog::new();
    for i in 0..RECORDS {
        let o = rng.next() as u32 % 40_000;
        let q = rng.next() as u32 % 2_000;
        log.push(QueryLogRecord {
            time: SimTime(i as u64 * SPAN_SECS / RECORDS as u64),
            querier: Ipv4Addr::from(0x0A00_0000 | q),
            originator: Ipv4Addr::from(0xC000_0000 | o),
            rcode: Rcode::NoError,
        });
    }
    log
}

/// Few heavily-queried originators, wide querier populations.
fn heavy_hitter_log() -> QueryLog {
    let mut rng = Lcg(0x5EED_0002);
    let mut log = QueryLog::new();
    for i in 0..RECORDS {
        let o = rng.next() as u32 % 64;
        let q = rng.next() as u32 % 30_000;
        log.push(QueryLogRecord {
            time: SimTime(i as u64 * SPAN_SECS / RECORDS as u64),
            querier: Ipv4Addr::from(0x0A00_0000 | q),
            originator: Ipv4Addr::from(0xC000_0000 | o),
            rcode: Rcode::NoError,
        });
    }
    log
}

fn stream_cfg() -> StreamConfig {
    StreamConfig {
        window: SimDuration::from_secs(SPAN_SECS + 1),
        max_originators: 10_000,
        admission_queries: 2,
        ..Default::default()
    }
}

fn run_stream(log: &QueryLog, cfg: StreamConfig) -> usize {
    let mut sensor = StreamingSensor::new(cfg);
    let mut emitted = 0usize;
    for r in log.records() {
        if let Some(w) = sensor.push(*r) {
            emitted += w.observations.originator_count();
        }
    }
    if let Some(w) = sensor.finish() {
        emitted += w.observations.originator_count();
    }
    emitted
}

fn run_stream_reference(log: &QueryLog, cfg: StreamConfig) -> usize {
    let mut sensor = ReferenceStreamingSensor::new(cfg);
    let mut emitted = 0usize;
    for r in log.records() {
        if let Some(w) = sensor.push(*r) {
            emitted += w.observations.originator_count();
        }
    }
    if let Some(w) = sensor.finish() {
        emitted += w.observations.originator_count();
    }
    emitted
}

fn batch_ingest(c: &mut Criterion) {
    let end = SimTime(SPAN_SECS + 1);
    let dedup = SimDuration::from_secs(30);
    for (shape, log) in [("storm", storm_log()), ("heavy_hitter", heavy_hitter_log())] {
        let mut g = c.benchmark_group(format!("ingest_batch_{shape}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(log.len() as u64));
        g.bench_function("fast", |b| {
            b.iter(|| {
                Observations::ingest_with_dedup(&log, SimTime::ZERO, end, dedup).originator_count()
            })
        });
        g.bench_function("reference", |b| {
            b.iter(|| {
                Observations::ingest_with_dedup_reference(&log, SimTime::ZERO, end, dedup)
                    .originator_count()
            })
        });
        g.finish();
    }
}

fn stream_ingest(c: &mut Criterion) {
    for (shape, log) in [("storm", storm_log()), ("heavy_hitter", heavy_hitter_log())] {
        let mut g = c.benchmark_group(format!("ingest_stream_{shape}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(log.len() as u64));
        g.bench_function("fast", |b| b.iter(|| run_stream(&log, stream_cfg())));
        g.bench_function("reference", |b| b.iter(|| run_stream_reference(&log, stream_cfg())));
        g.finish();
    }
}

criterion_group!(benches, batch_ingest, stream_ingest);
criterion_main!(benches);
