//! Criterion benches for the ML crate: training and prediction costs
//! at the paper's dataset sizes (≈300 examples × 22 features × 12
//! classes), plus head-to-head groups pitting the bs-mlcore columnar
//! fast paths against the retained reference implementations
//! (DESIGN.md §12).

use backscatter_core::ml::{
    Algorithm, CartParams, Dataset, Forest, ForestParams, ReferenceTree, Sample, Svm, SvmParams,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn paper_sized_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(
        (0..22).map(|i| format!("f{i}")).collect(),
        (0..12).map(|i| format!("c{i}")).collect(),
    );
    for _ in 0..300 {
        let label = rng.gen_range(0..12usize);
        let features: Vec<f64> = (0..22)
            .map(|j| {
                // Give each class a distinctive mean on a few features.
                let signal = if j % 12 == label { 1.0 } else { 0.0 };
                signal + rng.gen_range(-0.3..0.3)
            })
            .collect();
        d.push(Sample { features, label });
    }
    d
}

fn training(c: &mut Criterion) {
    let data = paper_sized_dataset(1);
    let mut g = c.benchmark_group("ml-train");
    g.sample_size(10);
    g.bench_function("cart", |b| {
        let alg = Algorithm::Cart(CartParams::default());
        b.iter(|| alg.fit(&data, 7))
    });
    g.bench_function("random_forest_100", |b| {
        let alg = Algorithm::RandomForest(ForestParams::default());
        b.iter(|| alg.fit(&data, 7))
    });
    g.bench_function("svm_rbf", |b| {
        let alg = Algorithm::Svm(SvmParams::default());
        b.iter(|| alg.fit(&data, 7))
    });
    g.finish();
}

fn prediction(c: &mut Criterion) {
    let data = paper_sized_dataset(2);
    let forest = Algorithm::RandomForest(ForestParams::default()).fit(&data, 7);
    let probe: Vec<f64> = (0..22).map(|i| i as f64 * 0.05).collect();
    c.bench_function("ml-predict/forest", |b| b.iter(|| forest.predict(&probe)));
}

/// Columnar fast paths vs the retained references, training on the
/// same B-root-window-sized dataset with the same seeds — the
/// speedup ratios behind the `bench.ml.*` gauges in perf_snapshot.
fn columnar_vs_reference_training(c: &mut Criterion) {
    let data = paper_sized_dataset(3);
    let mut g = c.benchmark_group("ml-train-vs-reference");
    g.sample_size(10);
    let fp = ForestParams { n_trees: 20, ..ForestParams::default() };
    g.bench_function("forest_columnar", |b| b.iter(|| Forest::fit(&data, &fp, 7)));
    g.bench_function("forest_reference", |b| b.iter(|| Forest::fit_reference(&data, &fp, 7)));
    let cp = CartParams::default();
    g.bench_function("cart_columnar", |b| {
        b.iter(|| backscatter_core::ml::DecisionTree::fit(&data, &cp, 7))
    });
    g.bench_function("cart_reference", |b| b.iter(|| ReferenceTree::fit(&data, &cp, 7)));
    let sp = SvmParams { max_iters: 30, ..SvmParams::default() };
    g.bench_function("svm_gram_cached", |b| b.iter(|| Svm::fit(&data, &sp, 7)));
    g.bench_function("svm_reference", |b| b.iter(|| Svm::fit_reference(&data, &sp, 7)));
    g.finish();
}

/// Flat-arena batch prediction vs per-row boxed descent over a full
/// window's worth of originators.
fn columnar_vs_reference_prediction(c: &mut Criterion) {
    let data = paper_sized_dataset(4);
    let fp = ForestParams { n_trees: 50, ..ForestParams::default() };
    let forest = Forest::fit(&data, &fp, 7);
    let xs: Vec<Vec<f64>> = data.samples.iter().map(|s| s.features.clone()).collect();
    let mut g = c.benchmark_group("ml-predict-vs-reference");
    g.sample_size(10);
    g.bench_function("forest_batch", |b| b.iter(|| forest.predict_all(&xs)));
    g.bench_function("forest_per_row", |b| {
        b.iter(|| xs.iter().map(|x| forest.predict(x)).collect::<Vec<_>>())
    });
    g.finish();
}

/// Lane-parallel blocked descent vs the retained row-at-a-time batch
/// reference vs per-row scalar calls — the ratios behind the
/// `bench.ml.forest_predict_*` gauges. Block transposition is part of
/// the lane path's measured cost (it happens once per batch in real
/// use too).
fn lane_vs_scalar_prediction(c: &mut Criterion) {
    let data = paper_sized_dataset(5);
    let fp = ForestParams { n_trees: 50, ..ForestParams::default() };
    let forest = Forest::fit(&data, &fp, 7);
    let xs: Vec<Vec<f64>> = data.samples.iter().map(|s| s.features.clone()).collect();
    assert_eq!(forest.predict_all(&xs), forest.predict_all_rows(&xs), "lane ≡ row reference");
    let mut g = c.benchmark_group("ml-predict-lanes");
    g.sample_size(10);
    g.bench_function("forest_lanes", |b| b.iter(|| forest.predict_all(&xs)));
    g.bench_function("forest_rows", |b| b.iter(|| forest.predict_all_rows(&xs)));
    g.bench_function("forest_per_row", |b| {
        b.iter(|| xs.iter().map(|x| forest.predict(x)).collect::<Vec<_>>())
    });
    g.finish();
}

criterion_group!(
    benches,
    training,
    prediction,
    columnar_vs_reference_training,
    columnar_vs_reference_prediction,
    lane_vs_scalar_prediction
);
criterion_main!(benches);
