//! Criterion benches for the ML crate: training and prediction costs
//! at the paper's dataset sizes (≈300 examples × 22 features × 12
//! classes).

use backscatter_core::ml::{Algorithm, CartParams, Dataset, ForestParams, Sample, SvmParams};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn paper_sized_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(
        (0..22).map(|i| format!("f{i}")).collect(),
        (0..12).map(|i| format!("c{i}")).collect(),
    );
    for _ in 0..300 {
        let label = rng.gen_range(0..12usize);
        let features: Vec<f64> = (0..22)
            .map(|j| {
                // Give each class a distinctive mean on a few features.
                let signal = if j % 12 == label { 1.0 } else { 0.0 };
                signal + rng.gen_range(-0.3..0.3)
            })
            .collect();
        d.push(Sample { features, label });
    }
    d
}

fn training(c: &mut Criterion) {
    let data = paper_sized_dataset(1);
    let mut g = c.benchmark_group("ml-train");
    g.sample_size(10);
    g.bench_function("cart", |b| {
        let alg = Algorithm::Cart(CartParams::default());
        b.iter(|| alg.fit(&data, 7))
    });
    g.bench_function("random_forest_100", |b| {
        let alg = Algorithm::RandomForest(ForestParams::default());
        b.iter(|| alg.fit(&data, 7))
    });
    g.bench_function("svm_rbf", |b| {
        let alg = Algorithm::Svm(SvmParams::default());
        b.iter(|| alg.fit(&data, 7))
    });
    g.finish();
}

fn prediction(c: &mut Criterion) {
    let data = paper_sized_dataset(2);
    let forest = Algorithm::RandomForest(ForestParams::default()).fit(&data, 7);
    let probe: Vec<f64> = (0..22).map(|i| i as f64 * 0.05).collect();
    c.bench_function("ml-predict/forest", |b| b.iter(|| forest.predict(&probe)));
}

criterion_group!(benches, training, prediction);
criterion_main!(benches);
