//! Criterion benches for the world model and simulator hot paths.

use backscatter_core::prelude::*;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn world_queries(c: &mut Criterion) {
    let world = World::new(WorldConfig::default());
    let addrs: Vec<std::net::Ipv4Addr> = (0..1024u64)
        .map(|i| world.random_public_addr(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();

    let mut g = c.benchmark_group("world");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("host_role", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for a in &addrs {
                acc += world.host_role(*a).is_some() as usize;
            }
            acc
        })
    });
    g.bench_function("reverse_name", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for a in &addrs {
                acc += matches!(world.reverse_name(*a), bs_name_outcome::Name(_)) as usize;
            }
            acc
        })
    });
    g.finish();
}

use backscatter_core::netsim::types::NameOutcome as bs_name_outcome;

fn simulator_contacts(c: &mut Criterion) {
    let world = World::new(WorldConfig::default());
    let scenario = Scenario::new(&world, ScenarioConfig::small(7, SimDuration::from_days(1)));
    let contacts = scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_hours(6));
    let jp = backscatter_core::netsim::types::CountryCode::new("jp").unwrap();
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(contacts.len() as u64));
    g.bench_function("process_contacts", |b| {
        b.iter_batched(
            || Simulator::new(&world, SimulatorConfig::observing([AuthorityId::National(jp)])),
            |mut sim| {
                sim.process(contacts.iter().copied());
                sim.stats().lookups
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn contact_generation(c: &mut Criterion) {
    let world = World::new(WorldConfig::default());
    let scenario = Scenario::new(&world, ScenarioConfig::small(7, SimDuration::from_days(1)));
    c.bench_function("scenario/contacts_6h", |b| {
        b.iter(|| scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_hours(6)).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = world_queries, simulator_contacts, contact_generation
}
criterion_main!(benches);
