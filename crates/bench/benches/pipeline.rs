//! Criterion benches for the sensing pipeline: ingestion, feature
//! extraction, the static-feature matcher, and parallel forest
//! training across thread counts.

use backscatter_core::ml::{Dataset, Forest, Sample};
use backscatter_core::prelude::*;
use backscatter_core::sensor::ingest::Observations;
use backscatter_core::sensor::static_features::classify_name;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn build_small_log() -> (World, backscatter_core::netsim::log::QueryLog) {
    let world = World::new(WorldConfig::default());
    let jp = backscatter_core::netsim::types::CountryCode::new("jp").unwrap();
    let mut cfg = ScenarioConfig::small(3, SimDuration::from_hours(12));
    cfg.region = Some((jp, 0.9));
    cfg.pool_size = 1_000;
    let scenario = Scenario::new(&world, cfg);
    let authority = AuthorityId::National(jp);
    let mut sim = Simulator::new(&world, SimulatorConfig::observing([authority]));
    sim.process(scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_hours(12)));
    let log = sim.into_logs().remove(&authority).expect("observed");
    (world, log)
}

fn ingestion(c: &mut Criterion) {
    let (world, log) = build_small_log();
    let mut g = c.benchmark_group("sensor");
    g.sample_size(20);
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("ingest_dedup", |b| {
        b.iter(|| {
            Observations::ingest(&log, SimTime::ZERO, SimTime::from_hours(12)).originator_count()
        })
    });
    g.bench_function("extract_features", |b| {
        b.iter(|| {
            extract_features(
                &log,
                &world,
                SimTime::ZERO,
                SimTime::from_hours(12),
                &FeatureConfig { min_queriers: 10, top_n: None },
            )
            .len()
        })
    });
    g.finish();
}

fn keyword_matcher(c: &mut Criterion) {
    let names: Vec<backscatter_core::dns::DomainName> = [
        "mail.example.com",
        "dsl1-2-3-4.bigisp.net",
        "ns1-cache.isp.jp",
        "a96-7-4-2.deploy.akamai.sim",
        "zxqv77.example.org",
        "fw2.corp.example.com",
        "ec2-1-2-3-4.compute.amazonaws.sim",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    let mut g = c.benchmark_group("static-features");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("classify_name", |b| {
        b.iter(|| names.iter().map(|n| classify_name(n) as usize).sum::<usize>())
    });
    g.finish();
}

/// The same ingest+extract hot path with the telemetry registry off
/// (the default: one relaxed atomic load per instrumented call) and on
/// (real counter/histogram updates). The "off" case must stay within
/// noise of the pre-telemetry baseline.
fn telemetry_overhead(c: &mut Criterion) {
    let (world, log) = build_small_log();
    let run = |world: &World, log: &backscatter_core::netsim::log::QueryLog| {
        extract_features(
            log,
            world,
            SimTime::ZERO,
            SimTime::from_hours(12),
            &FeatureConfig { min_queriers: 10, top_n: None },
        )
        .len()
    };
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(20);
    g.throughput(Throughput::Elements(log.len() as u64));
    backscatter_core::telemetry::disable();
    g.bench_function("extract_disabled", |b| b.iter(|| run(&world, &log)));
    backscatter_core::telemetry::enable();
    g.bench_function("extract_enabled", |b| b.iter(|| run(&world, &log)));
    backscatter_core::telemetry::disable();
    g.finish();
}

/// Forest training at 1/2/4/8 threads over the same data and seed.
/// The 1-thread case is the sequential baseline; determinism tests
/// elsewhere guarantee all four produce bit-identical forests, so this
/// measures scheduling overhead and scaling, nothing else.
fn forest_par(c: &mut Criterion) {
    // Deterministic two-blob training set, no RNG needed: class = x
    // parity, plus a noise-ish second feature from a fixed recurrence.
    let mut data = Dataset::new(
        vec!["x".into(), "y".into(), "z".into(), "w".into()],
        vec!["a".into(), "b".into()],
    );
    let mut h: u64 = 0x9E37_79B9;
    for i in 0..400 {
        h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let label = i % 2;
        data.push(Sample {
            features: vec![
                label as f64 * 2.0 + (h % 100) as f64 / 100.0,
                ((h >> 8) % 100) as f64 / 50.0,
                ((h >> 16) % 100) as f64 / 50.0,
                ((h >> 24) % 100) as f64 / 50.0,
            ],
            label,
        });
    }
    let params = ForestParams { n_trees: 64, ..Default::default() };
    let mut g = c.benchmark_group("forest_par");
    g.sample_size(10);
    g.throughput(Throughput::Elements(params.n_trees as u64));
    for t in [1usize, 2, 4, 8] {
        g.bench_function(format!("fit_{t}_threads"), |b| {
            backscatter_core::par::set_threads(t);
            b.iter(|| Forest::fit(&data, &params, 7).n_trees())
        });
    }
    backscatter_core::par::set_threads(0);
    g.finish();
}

criterion_group!(benches, ingestion, keyword_matcher, telemetry_overhead, forest_par);
criterion_main!(benches);
