//! Criterion benches for the sensing pipeline: ingestion, feature
//! extraction, and the static-feature matcher.

use backscatter_core::prelude::*;
use backscatter_core::sensor::ingest::Observations;
use backscatter_core::sensor::static_features::classify_name;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn build_small_log() -> (World, backscatter_core::netsim::log::QueryLog) {
    let world = World::new(WorldConfig::default());
    let jp = backscatter_core::netsim::types::CountryCode::new("jp").unwrap();
    let mut cfg = ScenarioConfig::small(3, SimDuration::from_hours(12));
    cfg.region = Some((jp, 0.9));
    cfg.pool_size = 1_000;
    let scenario = Scenario::new(&world, cfg);
    let authority = AuthorityId::National(jp);
    let mut sim = Simulator::new(&world, SimulatorConfig::observing([authority]));
    sim.process(scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_hours(12)));
    let log = sim.into_logs().remove(&authority).expect("observed");
    (world, log)
}

fn ingestion(c: &mut Criterion) {
    let (world, log) = build_small_log();
    let mut g = c.benchmark_group("sensor");
    g.sample_size(20);
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("ingest_dedup", |b| {
        b.iter(|| {
            Observations::ingest(&log, SimTime::ZERO, SimTime::from_hours(12)).originator_count()
        })
    });
    g.bench_function("extract_features", |b| {
        b.iter(|| {
            extract_features(
                &log,
                &world,
                SimTime::ZERO,
                SimTime::from_hours(12),
                &FeatureConfig { min_queriers: 10, top_n: None },
            )
            .len()
        })
    });
    g.finish();
}

fn keyword_matcher(c: &mut Criterion) {
    let names: Vec<backscatter_core::dns::DomainName> = [
        "mail.example.com",
        "dsl1-2-3-4.bigisp.net",
        "ns1-cache.isp.jp",
        "a96-7-4-2.deploy.akamai.sim",
        "zxqv77.example.org",
        "fw2.corp.example.com",
        "ec2-1-2-3-4.compute.amazonaws.sim",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    let mut g = c.benchmark_group("static-features");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("classify_name", |b| {
        b.iter(|| names.iter().map(|n| classify_name(n) as usize).sum::<usize>())
    });
    g.finish();
}

/// The same ingest+extract hot path with the telemetry registry off
/// (the default: one relaxed atomic load per instrumented call) and on
/// (real counter/histogram updates). The "off" case must stay within
/// noise of the pre-telemetry baseline.
fn telemetry_overhead(c: &mut Criterion) {
    let (world, log) = build_small_log();
    let run = |world: &World, log: &backscatter_core::netsim::log::QueryLog| {
        extract_features(
            log,
            world,
            SimTime::ZERO,
            SimTime::from_hours(12),
            &FeatureConfig { min_queriers: 10, top_n: None },
        )
        .len()
    };
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(20);
    g.throughput(Throughput::Elements(log.len() as u64));
    backscatter_core::telemetry::disable();
    g.bench_function("extract_disabled", |b| b.iter(|| run(&world, &log)));
    backscatter_core::telemetry::enable();
    g.bench_function("extract_enabled", |b| b.iter(|| run(&world, &log)));
    backscatter_core::telemetry::disable();
    g.finish();
}

criterion_group!(benches, ingestion, keyword_matcher, telemetry_overhead);
criterion_main!(benches);
