//! End-to-end smoke test: world → activity → simulator → sensor.
//!
//! This is the load-bearing integration check of the reproduction: the
//! generated classes must leave *distinguishable* fingerprints in the
//! backscatter a national authority sees, the way the paper's Fig. 3 /
//! Table II case studies do.

use bs_activity::{ApplicationClass, Scenario, ScenarioConfig};
use bs_dns::{SimDuration, SimTime};
use bs_netsim::hierarchy::AuthorityId;
use bs_netsim::types::CountryCode;
use bs_netsim::world::{World, WorldConfig};
use bs_netsim::{Simulator, SimulatorConfig};
use bs_sensor::{extract_features, FeatureConfig, StaticFeature};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Build a two-day JP-focused scenario, run it, and extract features at
/// the JP national authority.
fn run_jp_pipeline() -> (Vec<bs_sensor::OriginatorFeatures>, BTreeMap<Ipv4Addr, ApplicationClass>) {
    let world = World::new(WorldConfig::default());
    let jp = CountryCode::new("jp").unwrap();
    let mut cfg = ScenarioConfig::small(0xBEEF, SimDuration::from_days(2));
    cfg.region = Some((jp, 0.9));
    cfg.pool_size = 3_000;
    let scenario = Scenario::new(&world, cfg);

    let authority = AuthorityId::National(jp);
    let mut sim = Simulator::new(&world, SimulatorConfig::observing([authority]));
    let contacts = scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_days(2));
    assert!(contacts.len() > 10_000, "scenario too quiet: {} contacts", contacts.len());
    sim.process(contacts);

    let logs = sim.into_logs();
    let log = &logs[&authority];
    assert!(log.len() > 2_000, "authority too quiet: {} records", log.len());

    let features = extract_features(
        log,
        &world,
        SimTime::ZERO,
        SimTime::from_days(2),
        &FeatureConfig { min_queriers: 20, top_n: None },
    );
    let truth: BTreeMap<Ipv4Addr, ApplicationClass> =
        scenario.active_originators(SimTime::ZERO, SimTime::from_days(2)).into_iter().collect();
    (features, truth)
}

#[test]
fn classes_leave_distinct_static_fingerprints() {
    let (features, truth) = run_jp_pipeline();
    assert!(features.len() >= 15, "too few analyzable originators: {}", features.len());

    // Mean static fraction per class.
    let mut sums: BTreeMap<ApplicationClass, ([f64; 14], usize)> = BTreeMap::new();
    for f in &features {
        let Some(class) = truth.get(&f.originator) else {
            continue;
        };
        let e = sums.entry(*class).or_insert(([0.0; 14], 0));
        for (a, b) in e.0.iter_mut().zip(f.features.static_fractions) {
            *a += b;
        }
        e.1 += 1;
    }
    let mean = |c: ApplicationClass, f: StaticFeature| -> Option<f64> {
        sums.get(&c).map(|(s, n)| s[f.index()] / *n as f64)
    };

    // Spam/mail queriers are mail-heavy; scan queriers are not.
    if let (Some(spam_mail), Some(scan_mail)) = (
        mean(ApplicationClass::Spam, StaticFeature::Mail),
        mean(ApplicationClass::Scan, StaticFeature::Mail),
    ) {
        assert!(spam_mail > 0.35, "spam should be mail-dominated, got {spam_mail}");
        assert!(spam_mail > scan_mail + 0.2, "spam mail fraction {spam_mail} vs scan {scan_mail}");
    } else {
        panic!("spam or scan missing from analyzable set: {:?}", sums.keys().collect::<Vec<_>>());
    }

    // CDN queriers are home-heavy relative to scanners (Fig. 3).
    if let (Some(cdn_home), Some(scan_home)) = (
        mean(ApplicationClass::Cdn, StaticFeature::Home),
        mean(ApplicationClass::Scan, StaticFeature::Home),
    ) {
        assert!(cdn_home > scan_home, "cdn home fraction {cdn_home} vs scan {scan_home}");
    }
}

#[test]
fn sensor_stages_conserve_every_record() {
    // With the ledger recording, the ingest and analyzability stages
    // must account for every record they saw (records in == kept +
    // deduped + out-of-window + below-threshold + truncated). Other
    // tests in this binary may record concurrently; that is safe
    // because each ledger record call is internally balanced.
    bs_trace::enable();
    bs_trace::ledger::reset();
    let (features, _truth) = run_jp_pipeline();
    assert!(!features.is_empty(), "nothing analyzable — test is vacuous");
    let imbalances = bs_trace::ledger::verify();
    assert!(imbalances.is_empty(), "ledger imbalance:\n{}", bs_trace::ledger::render());
    let snap = bs_trace::ledger::snapshot();
    for stage in ["sensor.ingest", "sensor.select"] {
        assert!(snap.keys().any(|(s, _)| s == stage), "{stage} filed no ledger flows");
    }
    bs_trace::disable();
}

#[test]
fn scanners_show_wide_footprints_and_many_blocks() {
    let (features, truth) = run_jp_pipeline();
    // Scanners probe uniformly: their querier /24 diversity (local
    // entropy) should be high.
    let mut scan_entropy = Vec::new();
    let mut other_entropy = Vec::new();
    for f in &features {
        match truth.get(&f.originator) {
            Some(ApplicationClass::Scan) => scan_entropy.push(f.features.dynamic.local_entropy),
            Some(_) => other_entropy.push(f.features.dynamic.local_entropy),
            None => {}
        }
    }
    assert!(!scan_entropy.is_empty(), "no scanners analyzable");
    let scan_mean: f64 = scan_entropy.iter().sum::<f64>() / scan_entropy.len() as f64;
    assert!(scan_mean > 0.8, "scanner local entropy {scan_mean}");
}
