//! Integration: training-over-time behaviour on a compressed timeline
//! (the §V story end to end, on a real simulated dataset).

use dns_backscatter::classify::pipeline::feature_map;
use dns_backscatter::classify::{
    evaluate_strategy, ClassifierPipeline, LabeledSet, TrainingStrategy, WindowData,
};
use dns_backscatter::ml::{Algorithm, CartParams};
use dns_backscatter::prelude::*;

/// Build a multi-week dataset at B-Root with weekly windows.
fn weekly_windows(weeks: usize, seed: u64) -> (World, Vec<WindowData>) {
    let world = World::new(WorldConfig::default());
    let mut spec = DatasetSpec::paper(DatasetId::BMultiYear, Scale::smoke(), seed);
    spec.scenario.duration = SimDuration::from_days(weeks as u64 * 7);
    // Smoke scale is sparse; simulate every seventh day as the window.
    let built = build_dataset(&world, spec);
    let config = FeatureConfig { min_queriers: 10, top_n: None };
    let data = built
        .windows()
        .into_iter()
        .take(weeks)
        .map(|w| {
            let feats = built.features_for_window(&world, w, &config);
            WindowData {
                features: feature_map(&feats),
                truth: built.truth_for_window(w),
                querier_counts: feats.iter().map(|f| (f.originator, f.querier_count)).collect(),
            }
        })
        .collect();
    (world, data)
}

#[test]
fn malicious_examples_decay_faster_than_benign() {
    let (_, windows) = weekly_windows(10, 5);
    assert!(windows.len() >= 8, "got {} windows", windows.len());
    // Curate at window 0 from ground truth.
    let first = &windows[0];
    let mut labeled: Vec<(std::net::Ipv4Addr, ApplicationClass)> = first
        .truth
        .iter()
        .filter(|(ip, _)| first.features.contains_key(ip))
        .map(|(ip, c)| (*ip, *c))
        .collect();
    labeled.sort();
    let count_present = |w: &WindowData, malicious: bool| {
        labeled
            .iter()
            .filter(|(ip, c)| c.is_malicious() == malicious && w.features.contains_key(ip))
            .count()
    };
    let mal0 = count_present(&windows[0], true).max(1);
    let ben0 = count_present(&windows[0], false).max(1);
    let last = windows.last().expect("windows");
    let mal_rate = count_present(last, true) as f64 / mal0 as f64;
    let ben_rate = count_present(last, false) as f64 / ben0 as f64;
    assert!(
        mal_rate < ben_rate,
        "malicious retention {mal_rate:.2} should fall below benign {ben_rate:.2}"
    );
    assert!(ben_rate > 0.5, "benign examples should largely persist: {ben_rate:.2}");
}

#[test]
fn retrain_daily_is_at_least_as_good_as_train_once() {
    let (_, windows) = weekly_windows(8, 6);
    let pipeline =
        ClassifierPipeline { algorithm: Algorithm::Cart(CartParams::default()), runs: 1 };
    let once = evaluate_strategy(TrainingStrategy::TrainOnce, &windows, &pipeline, 60, 3);
    let daily = evaluate_strategy(TrainingStrategy::RetrainDaily, &windows, &pipeline, 60, 3);
    // Retraining with fresh features never loses usable windows and
    // does not do worse on average (§V-C).
    assert!(daily.usable_windows() >= once.usable_windows());
    assert!(
        daily.mean_f1() + 0.05 >= once.mean_f1(),
        "daily {:.2} vs once {:.2}",
        daily.mean_f1(),
        once.mean_f1()
    );
}

#[test]
fn curation_refresh_keeps_label_sets_from_starving() {
    let (_, windows) = weekly_windows(8, 7);
    let pipeline =
        ClassifierPipeline { algorithm: Algorithm::Cart(CartParams::default()), runs: 1 };
    let recurring = evaluate_strategy(
        TrainingStrategy::ManualRecurring { every: 2, per_class_cap: 60 },
        &windows,
        &pipeline,
        60,
        4,
    );
    let fixed = evaluate_strategy(TrainingStrategy::RetrainDaily, &windows, &pipeline, 60, 4);
    // The frozen set's stored size never shrinks but fills with dead
    // examples; re-curation keeps the set usable. The meaningful
    // invariants: recurring curation never loses trainable windows and
    // always holds a non-trivial, current label set.
    assert!(recurring.usable_windows() >= fixed.usable_windows());
    let last_recurring = recurring.scores.last().expect("scores").label_set_size;
    assert!(last_recurring >= 4, "recurring label set starved: {last_recurring}");
}

#[test]
fn labeled_set_curation_respects_caps_on_real_data() {
    let (_, windows) = weekly_windows(2, 8);
    let first = &windows[0];
    // Rebuild OriginatorFeatures-shaped inputs from the window data.
    let feats: Vec<dns_backscatter::sensor::OriginatorFeatures> = first
        .features
        .iter()
        .map(|(ip, fv)| dns_backscatter::sensor::OriginatorFeatures {
            originator: *ip,
            querier_count: first.querier_counts.get(ip).copied().unwrap_or(0),
            query_count: 0,
            features: fv.clone(),
        })
        .collect();
    let capped = LabeledSet::curate(&first.truth, &feats, 3);
    for (_, n) in capped.class_counts() {
        assert!(n <= 3);
    }
}
