//! End-to-end tests of the `backscatter` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_backscatter"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bs-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// Simulate once for the whole test file (smoke scale, ~seconds).
fn simulated_log() -> PathBuf {
    let path = tmp("cli-jp.tsv");
    if path.exists() {
        return path;
    }
    let out = bin()
        .args([
            "simulate",
            "--dataset",
            "JP-ditl",
            "--scale",
            "smoke",
            "--seed",
            "5",
            "--out",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    path
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_then_features_produces_tsv() {
    let log = simulated_log();
    let out = bin()
        .args(["features", "--log", log.to_str().unwrap(), "--min-queriers", "10"])
        .output()
        .expect("run features");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header row");
    assert!(header.starts_with("originator\tqueriers\tqueries\t"));
    assert_eq!(header.split('\t').count(), 3 + 22, "3 id columns + 22 features");
    let rows: Vec<&str> = lines.collect();
    assert!(!rows.is_empty(), "no analyzable originators");
    for row in rows {
        assert_eq!(row.split('\t').count(), 25, "bad row {row:?}");
    }
}

#[test]
fn capture_round_trip_preserves_log() {
    let log = simulated_log();
    let cap = tmp("cli-jp.bscap");
    let back = tmp("cli-jp-back.tsv");
    let out = bin()
        .args(["capture", "--log", log.to_str().unwrap(), "--out", cap.to_str().unwrap()])
        .output()
        .expect("encode");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["capture", "--capture", cap.to_str().unwrap(), "--out", back.to_str().unwrap()])
        .output()
        .expect("decode");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let a = std::fs::read_to_string(&log).unwrap();
    let b = std::fs::read_to_string(&back).unwrap();
    assert_eq!(a, b, "wire round trip must be lossless");
}

#[test]
fn train_then_classify_with_model() {
    let log = simulated_log();
    let model = tmp("cli-jp.bsf");
    let out = bin()
        .args([
            "train",
            "--log",
            log.to_str().unwrap(),
            "--dataset",
            "JP-ditl",
            "--scale",
            "smoke",
            "--seed",
            "5",
            "--save",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(std::fs::read_to_string(&model).unwrap().starts_with("bs-forest v1"));

    let out = bin()
        .args(["classify", "--log", log.to_str().unwrap(), "--model", model.to_str().unwrap()])
        .output()
        .expect("classify");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("originator\tqueriers\tclass"));
    assert!(stdout.lines().count() > 5, "should classify several originators");
}

#[test]
fn report_contains_sections() {
    let log = simulated_log();
    let out = bin()
        .args([
            "report",
            "--log",
            log.to_str().unwrap(),
            "--dataset",
            "JP-ditl",
            "--scale",
            "smoke",
            "--seed",
            "5",
        ])
        .output()
        .expect("report");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for section in ["situation report", "class mix", "largest originators", "scanner teams"] {
        assert!(stdout.contains(section), "missing {section:?}:\n{stdout}");
    }
}

#[test]
fn classify_with_metrics_writes_snapshot() {
    let log = simulated_log();
    let metrics = tmp("cli-metrics.json");
    // The seed must match `simulated_log()`: the ground-truth oracle is
    // rebuilt from the scenario seed, and a mismatched seed yields an
    // originator set disjoint from the log — an untrainable window with
    // no ml counters to assert on.
    let out = bin()
        .args([
            "classify",
            "--log",
            log.to_str().unwrap(),
            "--dataset",
            "JP-ditl",
            "--scale",
            "smoke",
            "--seed",
            "5",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("classify with metrics");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&metrics).expect("metrics file written");
    // At least one counter from each instrumented layer…
    assert!(json.contains("\"netsim.log.parsed_records\""), "netsim counter missing:\n{json}");
    assert!(json.contains("\"sensor.records\""), "sensor counter missing:\n{json}");
    assert!(json.contains("\"ml.trees_built\""), "ml counter missing:\n{json}");
    // …and the per-stage latency histograms with quantiles.
    for stage in ["core.curate", "core.retrain", "core.classify"] {
        assert!(json.contains(&format!("\"{stage}\"")), "missing histogram {stage}:\n{json}");
    }
    assert!(json.contains("\"count\"") && json.contains("\"p50\"") && json.contains("\"p99\""));
}

#[test]
fn simulate_with_trace_writes_chrome_trace_json() {
    let log = tmp("cli-trace-jp.tsv");
    let trace_out = tmp("cli-trace.json");
    let out = bin()
        .args([
            "simulate",
            "--dataset",
            "JP-ditl",
            "--scale",
            "smoke",
            "--seed",
            "5",
            "--out",
            log.to_str().unwrap(),
            "--trace",
            trace_out.to_str().unwrap(),
        ])
        .output()
        .expect("simulate with trace");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("ledger imbalance"), "conservation violated:\n{stderr}");

    let text = std::fs::read_to_string(&trace_out).expect("trace file written");
    let value = dns_backscatter::trace::json::parse(&text).expect("valid Chrome trace JSON");
    let events =
        value.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array present");
    assert!(events.len() > 4, "only {} trace events", events.len());
    assert!(
        events.iter().any(|e| e.get("name").and_then(|v| v.as_str()) == Some("cli.simulate")),
        "root span missing from trace"
    );

    // The inspection subcommand summarizes the same file.
    let out =
        bin().args(["trace", "--file", trace_out.to_str().unwrap()]).output().expect("trace cmd");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("spans by total time"), "no span summary:\n{stdout}");
    assert!(stdout.contains("cli.simulate"), "root span not summarized:\n{stdout}");
}

#[test]
fn trace_command_rejects_non_trace_files() {
    let log = simulated_log();
    let out = bin().args(["trace", "--file", log.to_str().unwrap()]).output().expect("trace cmd");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn stats_documents_the_metric_schema() {
    let out = bin().arg("stats").output().expect("stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in
        ["--metrics", "--trace", "netsim.contacts", "sensor.records", "BS_LOG", "BS_LOG_FORMAT"]
    {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
    let out = bin().args(["stats", "--format", "json"]).output().expect("stats json");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"counters\""));
}

#[test]
fn missing_file_errors_without_panic() {
    let out =
        bin().args(["features", "--log", "/definitely/not/a/file.tsv"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
}
