//! Integration: the system degrades gracefully on malformed, truncated,
//! and degenerate inputs.

use dns_backscatter::classify::pipeline::feature_map;
use dns_backscatter::classify::{ClassifierPipeline, LabeledSet};
use dns_backscatter::dns::message::Message;
use dns_backscatter::netsim::log::QueryLog;
use dns_backscatter::prelude::*;
use dns_backscatter::sensor::ingest::Observations;

#[test]
fn corrupted_log_lines_are_rejected_with_location() {
    let good = "0\t192.0.2.1\t203.0.113.9\tNOERROR\n";
    let bad = format!("{good}{good}not-a-record\n");
    let err = QueryLog::from_tsv(&bad).unwrap_err();
    assert_eq!(err.line, 3);

    // Round-tripping a real simulated log survives.
    let world = World::new(WorldConfig::default());
    let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 31));
    let text = built.log.to_tsv();
    let reloaded = QueryLog::from_tsv(&text).expect("own output parses");
    assert_eq!(&reloaded, &built.log);

    // …and truncating the text mid-line fails loudly instead of
    // silently dropping records.
    if text.len() > 10 {
        let cut = &text[..text.len() - 5];
        assert!(QueryLog::from_tsv(cut).is_err());
    }
}

#[test]
fn wire_decoder_survives_fuzz_like_corruption() {
    // Corrupt every byte of a valid packet one at a time; decoding must
    // never panic (errors are fine, and some corruptions still parse).
    let world = World::new(WorldConfig::default());
    let addr = world.random_public_addr(1);
    let q = Message::query(
        7,
        dns_backscatter::dns::reverse::reverse_name(addr),
        dns_backscatter::dns::QType::Ptr,
    );
    let bytes = q.encode();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut b = bytes.clone();
            b[i] ^= flip;
            let _ = Message::decode(&b);
        }
    }
}

#[test]
fn empty_window_produces_no_features_and_no_model() {
    let world = World::new(WorldConfig::default());
    let log = QueryLog::new();
    let feats =
        extract_features(&log, &world, SimTime(0), SimTime(1000), &FeatureConfig::default());
    assert!(feats.is_empty());
    let pipeline = ClassifierPipeline::random_forest();
    assert!(pipeline.train(&LabeledSet::default(), &feature_map(&feats), 1).is_none());
}

#[test]
fn window_outside_the_log_is_empty_not_wrong() {
    let world = World::new(WorldConfig::default());
    let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 32));
    let feats = extract_features(
        &built.log,
        &world,
        SimTime::from_days(100),
        SimTime::from_days(101),
        &FeatureConfig::default(),
    );
    assert!(feats.is_empty());
}

#[test]
fn single_class_labels_cannot_train_but_do_not_panic() {
    let world = World::new(WorldConfig::default());
    let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 33));
    let window = built.windows()[0];
    let feats =
        built.features_for_window(&world, window, &FeatureConfig { min_queriers: 5, top_n: None });
    let truth = built.truth_for_window(window);
    // Keep only spam labels.
    let spam_only: std::collections::BTreeMap<_, _> =
        truth.into_iter().filter(|(_, c)| *c == ApplicationClass::Spam).collect();
    let labeled = LabeledSet::curate(&spam_only, &feats, 140);
    assert!(!labeled.is_empty());
    let pipeline = ClassifierPipeline::random_forest();
    assert!(pipeline.train(&labeled, &feature_map(&feats), 1).is_none());
}

#[test]
fn observations_tolerate_out_of_order_records() {
    // Records shuffled in time: ingestion still produces a coherent
    // view (dedup keyed on last-accepted time is order-sensitive by
    // design, but nothing panics and counts stay sane).
    let world = World::new(WorldConfig::default());
    let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 34));
    let mut records: Vec<_> = built.log.records().to_vec();
    records.reverse();
    let mut shuffled = QueryLog::new();
    for r in records {
        shuffled.push(r);
    }
    let window = built.windows()[0];
    let obs = Observations::ingest(&shuffled, window.0, window.1);
    assert_eq!(
        obs.originator_count(),
        Observations::ingest(&built.log, window.0, window.1).originator_count()
    );
}
