//! End-to-end test of the bs-live scrape endpoint: a long-running
//! `backscatter stream --serve` process must answer `/metrics`,
//! `/snapshot`, and `/health` while ingesting, and the live snapshot's
//! windowed totals must agree with the post-hoc `--metrics` registry
//! snapshot the process writes at exit.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use dns_backscatter::live::http_get;
use dns_backscatter::trace::json;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_backscatter"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bs-live-endpoint-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// Simulate once for the whole test file (smoke scale, ~seconds).
fn simulated_log() -> PathBuf {
    let path = tmp("live-jp.tsv");
    if path.exists() {
        return path;
    }
    let out = bin()
        .args([
            "simulate",
            "--dataset",
            "JP-ditl",
            "--scale",
            "smoke",
            "--seed",
            "5",
            "--out",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    path
}

/// Every line of a Prometheus text exposition is a comment or
/// `name[{labels}] value` with a conforming metric name and a numeric
/// value.
fn assert_prometheus_conformant(body: &str) {
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("no value on line {line:?}"));
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name on line {line:?}"
        );
        assert!(value.parse::<f64>().is_ok(), "non-numeric value on line {line:?}");
    }
}

#[test]
fn stream_serve_answers_scrapes_while_ingesting() {
    let log = simulated_log();
    let records = std::fs::read_to_string(&log).unwrap().lines().count() as u64;
    assert!(records > 0, "simulated log is empty");
    // Pace the replay to ~2 s of wall clock so the endpoint is
    // observably up *during* ingest, then linger long enough for the
    // post-ingest scrape below.
    let pace = (records / 2).max(500).to_string();
    let metrics_path = tmp("live-final-metrics.json");
    let _ = std::fs::remove_file(&metrics_path);

    let mut child = bin()
        .args([
            "stream",
            "--log",
            log.to_str().unwrap(),
            "--window",
            "600",
            "--pace",
            &pace,
            "--serve",
            "127.0.0.1:0",
            "--linger",
            "3",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stream --serve");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();

    // The binary announces the ephemeral port before ingest starts.
    let addr: SocketAddr = loop {
        let line = lines
            .next()
            .expect("stdout closed before the listening line")
            .expect("read child stdout");
        if let Some(rest) = line.strip_prefix("live: listening on ") {
            break rest.trim().parse().expect("parse bound address");
        }
    };

    // Mid-ingest: all routes answer while records are still flowing.
    let (code, health) = http_get(addr, "/health").expect("scrape /health");
    assert_eq!(code, 200, "/health during ingest: {health}");
    json::parse(&health).expect("/health is valid JSON");

    let (code, prom) = http_get(addr, "/metrics").expect("scrape /metrics");
    assert_eq!(code, 200);
    assert_prometheus_conformant(&prom);
    assert!(prom.contains("live_ticks"), "live sampler gauges missing:\n{prom}");

    let (code, body) = http_get(addr, "/snapshot").expect("scrape /snapshot");
    assert_eq!(code, 200);
    json::parse(&body).expect("/snapshot is valid JSON (escaping holds)");

    // Drain stdout until ingest finishes (the summary line), then
    // scrape again inside the linger window: this sample is forced
    // after the final record, so its totals are the registry's finals.
    let mut summary_line = None;
    for line in lines.by_ref() {
        let line = line.expect("read child stdout");
        if line.starts_with("stream: ") {
            summary_line = Some(line);
            break;
        }
    }
    let summary_line = summary_line.expect("no stream summary line");
    assert!(
        summary_line.contains(&format!("{records} records")),
        "summary {summary_line:?} does not account for all {records} records"
    );

    let (code, body) = http_get(addr, "/snapshot").expect("scrape /snapshot post-ingest");
    assert_eq!(code, 200);
    let snap = json::parse(&body).expect("/snapshot is valid JSON");
    assert_eq!(snap.get("health").and_then(|h| h.as_str()), Some("ok"));
    let live_records = snap
        .get("rates")
        .and_then(|r| r.get("sensor.stream.records"))
        .and_then(|c| c.get("total"))
        .and_then(|t| t.as_f64())
        .expect("snapshot rates carry sensor.stream.records") as u64;
    assert_eq!(live_records, records, "live total disagrees with the record count");

    // Let the linger expire, then reconcile against the post-hoc
    // registry snapshot the process wrote on its way out.
    let status = child.wait().expect("wait for child");
    assert!(status.success(), "stream exited with {status}");
    let final_json = std::fs::read_to_string(&metrics_path).expect("read --metrics output");
    let final_snap = json::parse(&final_json).expect("--metrics output is valid JSON");
    let final_records = final_snap
        .get("counters")
        .and_then(|c| c.get("sensor.stream.records"))
        .and_then(|v| v.as_f64())
        .expect("final registry has sensor.stream.records") as u64;
    assert_eq!(
        live_records, final_records,
        "live snapshot total must match the post-hoc registry snapshot"
    );

    // Quantiles served live must be internally consistent wherever a
    // histogram got recorded.
    if let Some(hists) = snap.get("registry").and_then(|r| r.get("histograms")) {
        if let Some(pairs) = hists.as_object() {
            for (name, h) in pairs {
                let q = |k: &str| h.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
                assert!(
                    q("p50") <= q("p90") && q("p90") <= q("p99") && q("p99") <= q("max"),
                    "histogram {name} quantiles out of order: {h:?}"
                );
            }
        }
    }
}

#[test]
fn stats_watch_renders_a_live_rate_table() {
    let log = simulated_log();
    let mut child = bin()
        .args([
            "stream",
            "--log",
            log.to_str().unwrap(),
            "--window",
            "600",
            "--serve",
            "127.0.0.1:0",
            "--linger",
            "4",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stream --serve");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("stdout closed early").expect("read stdout");
        if let Some(rest) = line.strip_prefix("live: listening on ") {
            break rest.trim().to_string();
        }
    };

    let watch = bin()
        .args(["stats", "--watch", &addr, "--iterations", "2", "--interval-ms", "50"])
        .output()
        .expect("run stats --watch");
    assert!(
        watch.status.success(),
        "stats --watch failed: {}",
        String::from_utf8_lossy(&watch.stderr)
    );
    let text = String::from_utf8_lossy(&watch.stdout);
    assert!(text.contains("health="), "no health line:\n{text}");
    assert!(text.contains("counter"), "no rate table header:\n{text}");
    assert_eq!(text.matches("health=").count(), 2, "expected one header per iteration:\n{text}");

    let _ = child.kill();
    let _ = child.wait();
}
