//! End-to-end causal-tracing tests: the full dataset pipeline under
//! `--trace` semantics.
//!
//! These cover the three promises `bs-trace` makes at system level:
//! the Chrome export of a real run is valid and causally complete
//! (worker spans chain back to the root at any thread count), the
//! drop-accounting ledger balances over a whole pipeline run, and
//! enabling tracing does not perturb results (1-vs-8-thread runs stay
//! bit-identical with the recorder on).
//!
//! Tracing state is process-global, so every test serializes on one
//! mutex, and no other test binary shares this process.

use dns_backscatter::prelude::*;
use dns_backscatter::trace;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the pool pinned to `n` threads, restoring the default.
fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    dns_backscatter::par::set_threads(n);
    let r = f();
    dns_backscatter::par::set_threads(0);
    r
}

/// A quick smoke pipeline: one window, small voted forest.
fn smoke_pipeline() -> DatasetPipeline {
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    pipeline.classifier = ClassifierPipeline {
        algorithm: Algorithm::RandomForest(ForestParams { n_trees: 4, ..Default::default() }),
        runs: 3,
    };
    pipeline
}

/// span_id → (name, parent_id) for every SpanStart in `evs`.
fn span_index(evs: &[trace::Event]) -> BTreeMap<u64, (&'static str, u64)> {
    evs.iter()
        .filter_map(|e| match e.kind {
            trace::EventKind::SpanStart { name } => Some((e.span_id, (name, e.parent_id))),
            _ => None,
        })
        .collect()
}

/// Whether `ancestor` appears on the parent chain starting at `id`.
fn has_ancestor(index: &BTreeMap<u64, (&'static str, u64)>, mut id: u64, ancestor: u64) -> bool {
    for _ in 0..64 {
        if id == ancestor {
            return true;
        }
        id = match index.get(&id) {
            Some((_, parent)) => *parent,
            None => return false,
        };
    }
    false
}

#[test]
fn traced_pipeline_exports_valid_causally_complete_chrome_json() {
    let _g = serial();
    trace::enable();
    trace::drain();
    trace::ledger::reset();

    let world = World::new(WorldConfig::default());
    let (root_ctx, run, evs) = at_threads(4, || {
        let root = trace::span("test.pipeline");
        let root_ctx = root.context().expect("root span carries ids");
        let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7));
        let run = smoke_pipeline().run(&world, &built);
        drop(root);
        (root_ctx, run, trace::drain())
    });
    trace::disable();

    assert!(run.windows.iter().any(|w| !w.entries.is_empty()), "pipeline classified nothing");

    // The export is valid Chrome trace JSON with worker lanes labelled.
    let json = trace::chrome_trace_json(&evs);
    let value = trace::json::parse(&json).expect("export parses");
    let events = value.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(events.len() > 20, "only {} events", events.len());
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|v| v.as_str()))
        .collect();
    assert!(
        thread_names.iter().any(|n| n.starts_with("par-worker-")),
        "no worker lanes labelled, got {thread_names:?}"
    );

    // Causal completeness: every per-run training span chains back to
    // the root across the worker-thread hop.
    let index = span_index(&evs);
    let fit_runs: Vec<&trace::Event> = evs
        .iter()
        .filter(|e| matches!(e.kind, trace::EventKind::SpanStart { name } if name == "ml.fit_run"))
        .collect();
    assert!(!fit_runs.is_empty(), "no ml.fit_run spans recorded");
    for f in &fit_runs {
        assert_eq!(f.trace_id, root_ctx.trace_id, "one causal tree");
        assert!(
            has_ancestor(&index, f.span_id, root_ctx.span_id),
            "ml.fit_run chain reaches the root"
        );
    }
    for stage in ["datasets.build", "sensor.extract", "core.curate", "classify.train", "par.run"] {
        assert!(
            index.values().any(|(name, _)| *name == stage),
            "stage span {stage} missing from the trace"
        );
    }

    // The ledger balanced: every record that entered every stage is
    // accounted for, and the expected stages all filed flows.
    let imbalances = trace::ledger::verify();
    assert!(imbalances.is_empty(), "ledger imbalance:\n{}", trace::ledger::render());
    let snapshot = trace::ledger::snapshot();
    for stage in
        ["datasets.build", "sensor.ingest", "sensor.select", "classify.train", "core.window"]
    {
        assert!(
            snapshot.keys().any(|(s, _)| s == stage),
            "stage {stage} filed no ledger flows:\n{}",
            trace::ledger::render()
        );
    }
    // The per-window stages filed under window 0, not the ambient cell.
    assert!(
        snapshot.keys().any(|(s, w)| s == "sensor.ingest" && *w == 0),
        "sensor.ingest not scoped to window 0:\n{}",
        trace::ledger::render()
    );
    trace::ledger::reset();
}

#[test]
fn tracing_does_not_perturb_determinism_at_any_thread_count() {
    let _g = serial();
    let world = World::new(WorldConfig::default());
    let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7));
    let pipeline = smoke_pipeline();

    let baseline = at_threads(1, || pipeline.run(&world, &built));

    trace::enable();
    trace::drain();
    trace::ledger::reset();
    let seq = at_threads(1, || pipeline.run(&world, &built));
    assert!(trace::ledger::verify().is_empty(), "sequential run imbalanced");
    let par = at_threads(8, || pipeline.run(&world, &built));
    assert!(trace::ledger::verify().is_empty(), "parallel run imbalanced");
    trace::drain();
    trace::ledger::reset();
    trace::disable();

    assert_eq!(baseline.windows, seq.windows, "tracing changed sequential results");
    assert_eq!(seq.windows, par.windows, "results differ across thread counts under tracing");
}
