//! Property-tested equivalence between the `bs-simd` lane fast paths
//! and their retained scalar references (DESIGN.md §16).
//!
//! The claims are **bit-identity**, not approximate agreement:
//!
//! * lane-parallel blocked tree descent (`predict_all`) ≡ row-at-a-time
//!   batch reference (`predict_all_rows`) ≡ boxed [`ReferenceTree`]
//!   recursion, on arbitrary forests and rows — including rows placed
//!   **exactly on split thresholds** (training values live on a 0.5
//!   grid, so every CART threshold `(v + v_next)/2` lands on the 0.25
//!   grid the probes are drawn from) and ragged batch tails
//!   (`n % LANES != 0`);
//! * the packed static-feature matcher ≡ the byte-at-a-time reference
//!   on arbitrary querier names over the full DNS label charset;
//! * the sorted-run entropy accumulator ≡ the `BTreeMap` histogram
//!   reference, to the last bit of the float sum.
//!
//! The CI gate runs this suite under `BS_THREADS=1` and `BS_THREADS=8`
//! (`scripts/ci.sh`): forest training parallelizes over the pool, so
//! equality at both widths also pins thread-count invariance of the
//! models the lane path serves.

use bs_dns::DomainName;
use bs_ml::dataset::{Dataset, Sample};
use bs_ml::forest::{Forest, ForestParams};
use bs_ml::tree::{CartParams, DecisionTree, ReferenceTree};
use bs_sensor::dynamic::{normalized_entropy, normalized_entropy_reference};
use bs_sensor::static_features::{
    classify_name_with_order, classify_name_with_order_reference, MatchOrder,
};
use proptest::prelude::*;

/// 2–4 classes, 1–5 features, 10–40 training samples on a coarse 0.5
/// grid (so split thresholds land on the 0.25 grid and duplicate
/// values are common), paired with 0–19 probe rows on the **0.25**
/// grid: every CART threshold is the midpoint of two adjacent
/// 0.5-grid values, so probes land exactly on split boundaries (the
/// adversarial `x == threshold` case, which must go left in every
/// implementation). Probe count runs through ragged lane tails.
fn arb_dataset_and_probes() -> impl Strategy<Value = (Dataset, Vec<Vec<f64>>)> {
    (2usize..=4, 1usize..=5).prop_flat_map(|(n_classes, n_features)| {
        (
            proptest::collection::vec(
                (proptest::collection::vec(-8i64..8, n_features), 0usize..n_classes),
                10..40,
            ),
            proptest::collection::vec(proptest::collection::vec(-16i64..16, n_features), 0..20),
        )
            .prop_map(move |(rows, probe_grid)| {
                let mut d = Dataset::new(
                    (0..n_features).map(|i| format!("f{i}")).collect(),
                    (0..n_classes).map(|i| format!("c{i}")).collect(),
                );
                for (grid, label) in rows {
                    d.push(Sample {
                        features: grid.into_iter().map(|g| g as f64 * 0.5).collect(),
                        label,
                    });
                }
                let probes = probe_grid
                    .into_iter()
                    .map(|row| row.into_iter().map(|g| g as f64 * 0.25).collect())
                    .collect();
                (d, probes)
            })
    })
}

/// Keyword fragments spliced into random names so rule hits, boundary
/// cases and near-misses all occur in `static_matcher_equals_reference`.
const SPLICES: [&str; 14] = [
    "",
    "mail",
    "MAIL",
    "mailing",
    "ns",
    "pop3",
    "newsletter",
    "newsletter7",
    "chinacache",
    "amazonaws",
    "google",
    "customer-1",
    "fw",
    "wallet",
];

/// Alphabet sizes for the entropy property: the degenerate/edge values
/// the reference special-cases, plus an arbitrary positive draw.
const ALPHABETS: [f64; 4] = [0.5, 1.0, 2.0, 256.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lane predict ≡ row-batch reference ≡ boxed reference recursion,
    /// for a single CART tree on boundary-adversarial probes.
    #[test]
    fn tree_lane_predict_equals_scalar_and_boxed(
        (data, probes) in arb_dataset_and_probes(),
        seed in 0u64..50,
    ) {
        let params = CartParams { min_samples_split: 2, ..CartParams::default() };
        let fast = DecisionTree::fit(&data, &params, seed);
        let boxed = ReferenceTree::fit(&data, &params, seed);
        let lanes = fast.predict_all(&probes);
        prop_assert_eq!(&lanes, &fast.predict_all_rows(&probes), "lane ≡ row batch");
        for (x, &got) in probes.iter().zip(&lanes) {
            prop_assert_eq!(got, fast.predict(x), "lane ≡ scalar predict");
            prop_assert_eq!(got, boxed.predict(x), "lane ≡ boxed reference");
        }
    }

    /// Forest lane voting ≡ row-batch reference ≡ per-row prediction,
    /// with the training rows themselves and boundary probes mixed into
    /// one ragged batch.
    #[test]
    fn forest_lane_predict_equals_scalar(
        (data, probes) in arb_dataset_and_probes(),
        seed in 0u64..50,
    ) {
        let params = ForestParams { n_trees: 5, ..ForestParams::default() };
        let forest = Forest::fit(&data, &params, seed);
        let mut batch: Vec<Vec<f64>> = data.samples.iter().map(|s| s.features.clone()).collect();
        batch.extend(probes);
        let lanes = forest.predict_all(&batch);
        prop_assert_eq!(&lanes, &forest.predict_all_rows(&batch), "lane ≡ row batch");
        for (x, &got) in batch.iter().zip(&lanes) {
            prop_assert_eq!(got, forest.predict(x), "lane ≡ per-row predict");
        }
    }

    /// The packed keyword matcher classifies every parseable name
    /// identically to the byte-at-a-time reference, under both scan
    /// orders. Labels draw from the full DNS charset (mixed case,
    /// digits, `-`, `_`) with keyword fragments spliced in so rule
    /// hits, boundary cases and near-misses all occur.
    #[test]
    fn static_matcher_equals_reference(
        raw_labels in proptest::collection::vec("[A-Za-z0-9_-]{1,16}", 1..5),
        splice_idx in 0usize..SPLICES.len(),
        splice_at in 0usize..5,
    ) {
        let splice = SPLICES[splice_idx];
        let mut labels = raw_labels;
        if !splice.is_empty() {
            labels.insert(splice_at.min(labels.len()), splice.to_string());
        }
        let name = labels.join(".");
        if let Ok(name) = DomainName::parse(&name) {
            for order in [MatchOrder::LeftmostFirst, MatchOrder::RightmostFirst] {
                prop_assert_eq!(
                    classify_name_with_order(&name, order),
                    classify_name_with_order_reference(&name, order),
                    "name {:?} under {:?}", name, order
                );
            }
        }
    }

    /// The sorted-run entropy fast path returns the same bits as the
    /// `BTreeMap` histogram reference for every histogram shape and
    /// alphabet, including the degenerate single-run case where the
    /// sum is `-0.0`.
    #[test]
    fn entropy_equals_reference_bitwise(
        values in proptest::collection::vec(0u32..64, 0..200),
        alphabet in (0usize..=ALPHABETS.len(), 1.0f64..1e6)
            .prop_map(|(i, free)| ALPHABETS.get(i).copied().unwrap_or(free)),
    ) {
        prop_assert_eq!(
            normalized_entropy(&values, alphabet).to_bits(),
            normalized_entropy_reference(&values, alphabet).to_bits(),
            "values {:?} alphabet {}", values, alphabet
        );
    }
}

/// Deterministic (non-proptest) pin of the ragged-tail contract at
/// every small batch size: padding lanes must never leak into real
/// rows whatever `n % LANES` is.
#[test]
fn forest_lane_predict_ragged_tails_pinned() {
    let mut d =
        Dataset::new(vec!["x".into(), "y".into()], vec!["a".into(), "b".into(), "c".into()]);
    for i in 0..30 {
        d.push(Sample { features: vec![(i % 5) as f64 * 0.5, (i % 3) as f64 - 1.0], label: i % 3 });
    }
    let forest = Forest::fit(&d, &ForestParams { n_trees: 7, ..ForestParams::default() }, 3);
    let all: Vec<Vec<f64>> = d.samples.iter().map(|s| s.features.clone()).collect();
    for n in 0..=all.len() {
        let batch = &all[..n];
        assert_eq!(forest.predict_all(batch), forest.predict_all_rows(batch), "batch size {n}");
    }
}
