//! Integration: the hierarchy-attenuation invariants behind Fig. 4.

use dns_backscatter::netsim::experiment::{power_law_fit, run_controlled_scan, ControlledScan};
use dns_backscatter::netsim::hierarchy::Delegation;
use dns_backscatter::netsim::types::ContactKind;
use dns_backscatter::prelude::*;
use std::net::Ipv4Addr;

fn world() -> World {
    World::new(WorldConfig::default())
}

fn delegated_prober(w: &World) -> Ipv4Addr {
    (0..10_000u64)
        .map(|i| w.random_public_addr(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xAA))
        .find(|a| matches!(w.delegation(*a), Delegation::Delegated { .. }))
        .expect("delegated space exists")
}

#[test]
fn footprint_grows_monotonically_and_sublinearly() {
    let w = world();
    let prober = delegated_prober(&w);
    let sizes = [5_000u64, 25_000, 125_000, 625_000];
    let mut obs = Vec::new();
    for (i, &targets) in sizes.iter().enumerate() {
        let o = run_controlled_scan(
            &w,
            &ControlledScan {
                prober,
                targets,
                kind: ContactKind::ProbeTcp(22),
                duration: SimDuration::from_hours(6),
                trial_seed: i as u64,
            },
        );
        obs.push((targets as f64, o.queriers_at_final as f64));
    }
    // Monotone growth.
    for w2 in obs.windows(2) {
        assert!(w2[1].1 > w2[0].1, "{obs:?}");
    }
    // Sub-linear: the fitted exponent is clearly below 1.
    let (_, p) = power_law_fit(&obs).expect("fit");
    assert!(p < 0.97, "exponent {p} not sub-linear");
    assert!(p > 0.5, "exponent {p} implausibly flat");
}

#[test]
fn detection_threshold_crossed_by_small_scans_at_final_authority() {
    let w = world();
    let prober = delegated_prober(&w);
    // The paper: the final authority detects everything at 0.001 % of
    // the Internet or more. Our smallest Fig. 4 size easily crosses 20.
    let o = run_controlled_scan(
        &w,
        &ControlledScan {
            prober,
            targets: 4_000,
            kind: ContactKind::ProbeIcmp,
            duration: SimDuration::from_hours(1),
            trial_seed: 9,
        },
    );
    assert!(
        o.queriers_at_final >= 20,
        "4k-target scan only reached {} queriers",
        o.queriers_at_final
    );
}

#[test]
fn roots_are_attenuated_severalfold() {
    let w = world();
    let prober = delegated_prober(&w);
    let o = run_controlled_scan(
        &w,
        &ControlledScan {
            prober,
            targets: 400_000,
            kind: ContactKind::ProbeTcp(80),
            duration: SimDuration::from_hours(8),
            trial_seed: 3,
        },
    );
    let roots: usize = o.queriers_at_root.values().sum();
    assert!(o.queriers_at_final > 1_000);
    // EXPERIMENTS.md documents root attenuation of ~6-30x at simulator
    // scale (broken resolvers hammer the roots; real-world attenuation
    // is ~1000x at real traffic volumes).
    assert!(roots * 5 <= o.queriers_at_final, "roots {roots} vs final {}", o.queriers_at_final);
}

#[test]
fn ttl_zero_override_defeats_caching_repeats() {
    // Two identical scans back to back: with TTL 0 the second run's
    // repeated queriers still reach the final authority.
    let w = world();
    let prober = delegated_prober(&w);
    let authority = AuthorityId::final_for(prober);
    let mut sim = Simulator::new(&w, SimulatorConfig::observing([authority]));
    sim.override_ptr_policy(
        prober,
        dns_backscatter::netsim::hierarchy::PtrPolicy::Exists { ttl: 0 },
    );
    let mk = |t: u64, i: u64| dns_backscatter::netsim::types::Contact {
        time: SimTime(t),
        originator: prober,
        target: w.random_public_addr(i ^ 0x77AA),
        kind: ContactKind::ProbeIcmp,
    };
    for i in 0..50_000u64 {
        sim.contact(mk(i / 100, i));
    }
    let first = sim.logs()[&authority].len();
    for i in 0..50_000u64 {
        sim.contact(mk(3_600 + i / 100, i)); // same targets, one hour later
    }
    let second = sim.logs()[&authority].len() - first;
    assert!(first > 500);
    // With caching the repeat would nearly vanish; with TTL 0 it is a
    // comparable batch of arrivals.
    assert!(second * 2 > first, "repeat pass saw {second} vs first {first}");
}
