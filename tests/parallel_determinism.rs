//! The `bs-par` determinism contract, end to end: every parallel hot
//! path must produce bit-identical output at any thread count.
//!
//! Thread-count overrides are process-global (`set_threads`), so every
//! test serializes on one mutex and restores the default before
//! releasing it. The interesting comparisons are 1 thread (the pure
//! sequential fallback, no pool at all) versus 8 (more workers than
//! this container has cores, so queues drain by stealing).

use dns_backscatter::ml::{Algorithm, Dataset, Forest, ForestParams, MajorityEnsemble, Sample};
use dns_backscatter::prelude::*;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the pool pinned to `n` threads, restoring the default.
fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    dns_backscatter::par::set_threads(n);
    let r = f();
    dns_backscatter::par::set_threads(0);
    r
}

/// A deterministic 300-sample, 4-feature, 2-class training set from a
/// fixed LCG — no RNG machinery, same bits every call.
fn training_set() -> Dataset {
    let mut data = Dataset::new(
        vec!["x".into(), "y".into(), "z".into(), "w".into()],
        vec!["a".into(), "b".into()],
    );
    let mut h: u64 = 0x9E37_79B9;
    for i in 0..300 {
        h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let label = i % 2;
        data.push(Sample {
            features: vec![
                label as f64 * 2.0 + (h % 100) as f64 / 100.0,
                ((h >> 8) % 100) as f64 / 50.0,
                ((h >> 16) % 100) as f64 / 50.0,
                ((h >> 24) % 100) as f64 / 50.0,
            ],
            label,
        });
    }
    data
}

/// Probe points covering both classes and the decision boundary.
fn grid() -> Vec<Vec<f64>> {
    let mut g = Vec::new();
    for i in 0..40 {
        let x = i as f64 / 13.0;
        g.push(vec![x, 2.0 - x, x / 2.0, 1.0 - x / 3.0]);
    }
    g
}

#[test]
fn forest_fit_is_identical_at_1_and_8_threads() {
    let _guard = serial();
    let data = training_set();
    let params = ForestParams { n_trees: 24, ..Default::default() };
    let seq = at_threads(1, || Forest::fit(&data, &params, 42));
    let par = at_threads(8, || Forest::fit(&data, &params, 42));
    // Importances are f64 sums reduced in tree order after the parallel
    // section, so even they must match bitwise.
    assert_eq!(seq.importances(), par.importances());
    for x in grid() {
        assert_eq!(seq.predict(&x), par.predict(&x));
    }
}

#[test]
fn ensemble_fit_is_identical_at_1_and_8_threads() {
    let _guard = serial();
    let data = training_set();
    let alg = Algorithm::RandomForest(ForestParams { n_trees: 8, ..Default::default() });
    let seq = at_threads(1, || MajorityEnsemble::fit(&alg, &data, 10, 7));
    let par = at_threads(8, || MajorityEnsemble::fit(&alg, &data, 10, 7));
    assert_eq!(seq.len(), par.len());
    for x in grid() {
        assert_eq!(seq.predict_with_confidence(&x), par.predict_with_confidence(&x));
    }
}

#[test]
fn feature_extraction_is_identical_at_1_and_8_threads() {
    let _guard = serial();
    let world = World::new(WorldConfig::default());
    let jp = dns_backscatter::netsim::types::CountryCode::new("jp").unwrap();
    let mut cfg = ScenarioConfig::small(3, SimDuration::from_hours(12));
    cfg.region = Some((jp, 0.9));
    cfg.pool_size = 1_000;
    let scenario = Scenario::new(&world, cfg);
    let authority = AuthorityId::National(jp);
    let mut sim = Simulator::new(&world, SimulatorConfig::observing([authority]));
    sim.process(scenario.contacts_window(&world, SimTime::ZERO, SimTime::from_hours(12)));
    let log = sim.into_logs().remove(&authority).expect("observed");

    let extract = || {
        extract_features(
            &log,
            &world,
            SimTime::ZERO,
            SimTime::from_hours(12),
            &FeatureConfig { min_queriers: 10, top_n: None },
        )
    };
    let seq = at_threads(1, extract);
    let par = at_threads(8, extract);
    assert!(!seq.is_empty(), "nothing analyzable — test is vacuous");
    assert_eq!(seq, par);
}

#[test]
fn full_dataset_pipeline_is_identical_at_1_and_8_threads() {
    let _guard = serial();
    let world = World::new(WorldConfig::default());
    let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7);
    let built = build_dataset(&world, spec);
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    // A small forest voted over a few runs keeps the test quick while
    // still nesting window → ensemble → tree parallelism three deep.
    pipeline.classifier = ClassifierPipeline {
        algorithm: Algorithm::RandomForest(ForestParams { n_trees: 8, ..Default::default() }),
        runs: 3,
    };

    let seq = at_threads(1, || pipeline.run(&world, &built));
    let par = at_threads(8, || pipeline.run(&world, &built));
    assert!(
        seq.windows.iter().any(|w| !w.entries.is_empty()),
        "pipeline classified nothing — test is vacuous"
    );
    assert_eq!(seq.windows, par.windows);
}

proptest! {
    /// `par_map` must return outputs in input order for any input and
    /// any thread count — the keystone the seed-derivation scheme and
    /// every test above rest on.
    #[test]
    fn par_map_preserves_input_order(xs in proptest::collection::vec(any::<i64>(), 0..200),
                                     t in 1usize..9) {
        let _guard = serial();
        let out = at_threads(t, || {
            dns_backscatter::par::par_map(&xs, |i, x| (i, x.wrapping_mul(3)))
        });
        prop_assert_eq!(out.len(), xs.len());
        for (i, (idx, v)) in out.iter().enumerate() {
            prop_assert_eq!(*idx, i);
            prop_assert_eq!(*v, xs[i].wrapping_mul(3));
        }
    }
}
