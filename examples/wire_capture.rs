//! The DNS substrate on its own: wire-format reverse queries, caches,
//! and the sensor's collection filter.
//!
//! Everything upstream of the classifier speaks real DNS. This example
//! builds the exact packets of the paper's Figure 1 — a mail target's
//! resolver asking `PTR? 4.3.2.1.in-addr.arpa` about a spammer at
//! 1.2.3.4 — runs them through the wire codec, and shows how an
//! authority's capture loop filters reverse queries and how a resolver
//! cache suppresses repeats.
//!
//! ```bash
//! cargo run --release --example wire_capture
//! ```

use dns_backscatter::dns::message::{Message, QType, Rcode, RecordData, ResourceRecord};
use dns_backscatter::dns::name::DomainName;
use dns_backscatter::dns::reverse::{parse_reverse_v4, reverse_name};
use dns_backscatter::dns::{Cache, CacheConfig, CacheOutcome, SimTime};
use std::net::Ipv4Addr;

fn main() {
    // Figure 1 of the paper: spam.bad.jp (1.2.3.4) spams targets, whose
    // resolver rdns.example.com looks up the reverse name.
    let originator = Ipv4Addr::new(1, 2, 3, 4);
    let qname = reverse_name(originator);
    println!("originator {originator} → QNAME {qname}");

    // The querier's packet, on the wire.
    let query = Message::query(0x4242, qname.clone(), QType::Ptr);
    let bytes = query.encode();
    println!("query encodes to {} bytes: {:02x?}…", bytes.len(), &bytes[..16]);

    // The authority's capture loop: decode, keep reverse queries only.
    let decoded = Message::decode(&bytes).expect("well-formed packet");
    assert!(decoded.is_reverse_query());
    let seen = parse_reverse_v4(&decoded.question().unwrap().qname).unwrap();
    println!("authority log line: querier asked about originator {seen}");

    // A forward query does NOT pass the filter.
    let forward = Message::query(7, DomainName::parse("www.example.com").unwrap(), QType::A);
    assert!(!forward.is_reverse_query());
    println!("forward query filtered out (not backscatter)");

    // The authority answers; the resolver caches for the record TTL.
    let answer = Message::response(
        &decoded,
        Rcode::NoError,
        vec![ResourceRecord {
            name: qname.clone(),
            ttl: 3600,
            data: RecordData::Ptr(DomainName::parse("spam.bad.jp").unwrap()),
        }],
    );
    let answer_bytes = answer.encode();
    println!("response encodes to {} bytes (with name compression)", answer_bytes.len());

    let mut cache = Cache::new(CacheConfig::default());
    cache.insert_positive(
        &qname,
        QType::Ptr,
        DomainName::parse("spam.bad.jp").unwrap(),
        3600,
        SimTime(0),
    );
    match cache.lookup(&qname, QType::Ptr, SimTime(1800)) {
        CacheOutcome::Positive(name) => {
            println!("30 min later the resolver answers from cache: {name}");
            println!("→ the authority never sees this repeat: that cache is why");
            println!("  backscatter is attenuated as it climbs the DNS hierarchy.");
        }
        other => panic!("unexpected cache outcome {other:?}"),
    }
    assert_eq!(cache.lookup(&qname, QType::Ptr, SimTime(3700)), CacheOutcome::Miss);
    println!("after the TTL the next lookup would reach the authority again.");
}
