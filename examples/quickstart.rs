//! Quickstart: sense, curate, train, and classify in ~30 lines.
//!
//! Builds a small simulated Internet, runs two days of JP-focused
//! network-wide activity, observes the backscatter at the JP national
//! reverse-DNS authority, and classifies every analyzable originator.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dns_backscatter::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // 1. A world and two days of activity focused on JP address space.
    let world = World::new(WorldConfig::default());
    let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 42);
    println!("simulating {} …", spec.id.name());
    let built = build_dataset(&world, spec);
    println!(
        "  {} contacts → {} reverse queries observed at {}",
        built.stats.contacts,
        built.log.len(),
        built.spec.authority
    );

    // 2. The full pipeline: curate labels, train a random forest with
    //    majority voting, classify every analyzable originator.
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10; // smoke scale is small
    let run = pipeline.run(&world, &built);
    let window = &run.windows[0];
    println!(
        "  curated {} labeled examples; classified {} originators",
        run.labels.len(),
        window.entries.len()
    );

    // 3. What did the sensor see?
    let mut mix: BTreeMap<ApplicationClass, usize> = BTreeMap::new();
    for e in &window.entries {
        *mix.entry(e.class).or_insert(0) += 1;
    }
    println!("\nclass mix of analyzable originators:");
    for (class, n) in &mix {
        println!("  {:12} {}", class.name(), n);
    }

    // 4. The biggest footprints — in the paper these are unsavoury, and
    //    they should be here too.
    let mut by_size = window.entries.clone();
    by_size.sort_by_key(|e| std::cmp::Reverse(e.queriers));
    println!("\ntop five originators by footprint:");
    for e in by_size.iter().take(5) {
        println!("  {:15} {:>6} queriers → {}", e.originator.to_string(), e.queriers, e.class);
    }
}
