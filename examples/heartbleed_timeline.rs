//! Watching a vulnerability disclosure ripple through backscatter.
//!
//! Reproduces the paper's §VI-C motivation at example scale: a steady
//! background of scanning, then a burst of TCP-443 scanners in the
//! weeks after a Heartbleed-style disclosure. The weekly scan counts
//! are computed purely from reverse-DNS backscatter at M-Root — no
//! packet capture anywhere near the scanners.
//!
//! ```bash
//! cargo run --release --example heartbleed_timeline
//! ```

use dns_backscatter::prelude::*;

fn main() {
    let world = World::new(WorldConfig::default());

    // Ten weeks of global activity; disclosure at the end of week 4.
    let mut cfg = ScenarioConfig::small(0xB1EED, SimDuration::from_days(70));
    cfg.slots.insert(ApplicationClass::Scan, 14);
    cfg.slots.insert(ApplicationClass::Spam, 12);
    cfg.pool_size = 2_000;
    cfg.events.push(ScenarioEvent::ScanSurge {
        start: SimTime::from_days(28),
        duration: SimDuration::from_days(14),
        extra_scanners: 10,
        port: 443,
    });
    let scenario = Scenario::new(&world, cfg);

    // Observe M-Root, like the paper's M-sampled feed.
    let authority = AuthorityId::Root(RootServer::M);
    let mut sim = Simulator::new(&world, SimulatorConfig::observing([authority]));
    println!("simulating 10 weeks of global activity…");
    for day in 0..70u64 {
        let from = SimTime::from_days(day);
        sim.process(scenario.contacts_window(&world, from, SimTime::from_days(day + 1)));
        sim.sweep(from);
    }
    let log = sim.into_logs().remove(&authority).expect("observed");
    println!("  {} reverse queries at {authority}", log.len());

    // Weekly scan counts from ground truth ∩ analyzable originators.
    println!("\nweek  scanners  bar");
    for week in 0..10u64 {
        let from = SimTime::from_days(week * 7);
        let until = SimTime::from_days((week + 1) * 7);
        let feats = extract_features(
            &log,
            &world,
            from,
            until,
            &FeatureConfig { min_queriers: 5, top_n: None },
        );
        let truth: std::collections::BTreeMap<_, _> =
            scenario.active_originators(from, until).into_iter().collect();
        let scanners = feats
            .iter()
            .filter(|f| truth.get(&f.originator) == Some(&ApplicationClass::Scan))
            .count();
        let marker = if (4..6).contains(&week) { "  ← disclosure window" } else { "" };
        println!("{week:>4}  {scanners:>8}  {}{marker}", "#".repeat(scanners));
    }
    println!("\nthe burst rides on a continuous scanning background — the paper's");
    println!("central longitudinal observation (Fig. 11).");
}
