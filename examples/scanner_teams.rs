//! Hunting coordinated scanner teams from backscatter alone.
//!
//! The paper's §VI-B spots /24 blocks where several addresses scan in
//! concert — with no direct view of the scanners' traffic. This example
//! runs the same hunt: classify originators from backscatter at the JP
//! national authority, group scanners by /24, and cross-check the
//! suspicious blocks against the darknet oracle.
//!
//! ```bash
//! cargo run --release --example scanner_teams
//! ```

use dns_backscatter::analysis::teams::{busiest_scan_blocks, scan_teams};
use dns_backscatter::analysis::{ClassifiedOriginator, WindowClassification};
use dns_backscatter::prelude::*;

fn main() {
    let world = World::new(WorldConfig::default());
    let mut spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 0x7EA3);
    // More scanners and bigger teams than the stock smoke recipe.
    spec.scenario.slots.insert(ApplicationClass::Scan, 24);
    spec.scenario.scan_teams = (3, 5);
    println!("simulating {} with scanner teams…", spec.id.name());
    let built = build_dataset(&world, spec);

    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    let run = pipeline.run(&world, &built);
    let windows: Vec<WindowClassification> = run.windows;
    let n_scan: usize = windows[0].of_class(ApplicationClass::Scan).map(|_| 1usize).sum();
    println!("  classified {n_scan} scan originators from backscatter");

    // Team statistics over the classified output.
    let summary = scan_teams(&windows, 4);
    println!("\nteam hunt (threshold: ≥4 scanners per /24):");
    println!("  scanning /24 blocks:   {}", summary.blocks);
    println!("  candidate team blocks: {}", summary.candidate_teams);
    println!("  single-class blocks:   {}", summary.single_class_teams);

    println!("\nbusiest scanning blocks, cross-checked against the darknet:");
    for (block, members) in busiest_scan_blocks(&windows, 5) {
        // Sum the darknet evidence of the block's classified scanners.
        let dark: u64 = windows[0]
            .entries
            .iter()
            .filter(|e: &&ClassifiedOriginator| {
                e.class == ApplicationClass::Scan
                    && u32::from(e.originator) & 0xFFFF_FF00 == u32::from(block)
            })
            .map(|e| built.darknet.dark_ips(e.originator))
            .sum();
        println!(
            "  {block}/24: {members} scanners, {dark} darknet addresses touched{}",
            if members >= 4 { "  ← team candidate" } else { "" }
        );
    }
    println!("\nbackscatter found these without seeing a single probe packet;");
    println!("the darknet column is the independent confirmation the paper uses.");
}
