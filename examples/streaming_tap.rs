//! A live tap at an authority: the streaming sensor.
//!
//! Deployment differs from research replay: records arrive one at a
//! time, forever, and memory must stay bounded. This example simulates
//! a day and a half of JP traffic, then replays the log through
//! [`StreamingSensor`](dns_backscatter::sensor::StreamingSensor) in
//! six-hour windows with a deliberately small originator table,
//! showing that the heavy hitters (the only classifiable originators)
//! survive the memory bound.
//!
//! ```bash
//! cargo run --release --example streaming_tap
//! ```

use dns_backscatter::prelude::*;
use dns_backscatter::sensor::ingest::select_analyzable;
use dns_backscatter::sensor::{StreamConfig, StreamingSensor, WindowSummary};

fn main() {
    // Turn the telemetry registry on so the run ends with a snapshot of
    // everything the pipeline counted and timed.
    dns_backscatter::telemetry::enable();

    // Simulate 36 hours of JP-observable activity.
    let world = World::new(WorldConfig::default());
    let mut spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 11);
    spec.scenario.duration = SimDuration::from_hours(36);
    println!("simulating 36 hours at the JP national authority…");
    let built = build_dataset(&world, spec);
    println!("  {} reverse-query records\n", built.log.len());

    // Replay through the streaming sensor: 6-hour windows, a tight
    // 500-originator memory bound.
    let mut sensor = StreamingSensor::new(StreamConfig {
        window: SimDuration::from_hours(6),
        max_originators: 500,
        ..Default::default()
    });
    let mut windows: Vec<WindowSummary> = Vec::new();
    for r in built.log.records() {
        if let Some(w) = sensor.push(*r) {
            windows.push(w);
        }
    }
    windows.extend(sensor.finish());

    println!("window            tracked  analyzable(≥20q)  evicted  biggest footprint");
    for w in &windows {
        let analyzable = select_analyzable(&w.observations, 20, None);
        let biggest = analyzable.first().map(|o| o.querier_count()).unwrap_or(0);
        println!(
            "{}..{}  {:>7}  {:>16}  {:>7}  {:>17}",
            w.window.0,
            w.window.1,
            w.observations.originator_count(),
            analyzable.len(),
            w.evicted,
            biggest
        );
    }
    println!();
    println!("evictions only ever touch sub-threshold originators: everything the");
    println!("classifier would use survives a 500-entry table.");

    // What the run looked like from the inside: counters from the
    // simulator and the streaming sensor, plus window-flush latency.
    println!();
    println!("telemetry snapshot:");
    print!("{}", dns_backscatter::telemetry::snapshot_json());
}
